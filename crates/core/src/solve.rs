//! The parallel Solve stage: deterministic cube-and-conquer and a seeded
//! portfolio over the constraint-selector encoding.
//!
//! After pruning, every surviving constraint is one Boolean *selector*
//! whose polarity picks a side of the constraint. That structure admits
//! two classic parallelization strategies, both implemented here over
//! cheap clones of the encoded pre-solve [`Solver`] state:
//!
//! * **Cube-and-conquer** ([`SolveMode::Cube`]): rank the selectors by how
//!   contended their constraints are (transaction-degree heuristic), fix
//!   the polarities of the top `k` as assumption literals, and solve the
//!   resulting `2^k` *cubes* — a partition of the assignment space — on a
//!   scoped thread pool. Cube 0 follows the seeded phases (the
//!   most-likely-SAT subspace); cube `i` flips the seeded polarity of
//!   selector bit `b` iff bit `b` of `i` is set.
//! * **Portfolio** ([`SolveMode::Portfolio`]): race identical copies of
//!   the whole instance whose search trajectories are deterministically
//!   perturbed per worker ([`Solver::reseed`]; worker 0 is the unseeded
//!   sequential solver). The first finisher cancels the rest.
//!
//! # Determinism contract
//!
//! Any [`SolveThreads`] setting — and either parallel mode — produces
//! **byte-identical verdicts and counterexample cycles**:
//!
//! * a cube is a restriction of the instance, and every model falls in
//!   exactly the cube matching its top-`k` polarities, so *some cube is
//!   SAT iff the instance is SAT* (the run accepts on the first SAT cube
//!   and rejects only when all cubes are UNSAT);
//! * portfolio workers all decide the *same* instance, so every finisher
//!   returns the same verdict (tie-break for the reported winner: lowest
//!   conflict count, then lowest worker index);
//! * on UNSAT the counterexample cycle is extracted from the *polygraph*
//!   (every uniform constraint resolution is cyclic — Definition 15), not
//!   from any worker's solver state.
//!
//! Solver *counters* ([`SolveStats::solver`]) are deterministic for
//! sequential runs and for cube runs at one thread; with racing workers
//! the set of units that finish before cancellation — and therefore the
//! merged counters and the reported winner — may vary run to run. The
//! verdict and witness never do.

use polysi_polygraph::Polygraph;
use polysi_solver::{Lit, SolveResult, Solver, SolverStats, Var};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Which solve strategy to run (CLI: implied by `--solve-threads`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SolveMode {
    /// Pick per instance: sequential at one thread or with no selectors,
    /// cube-and-conquer when enough selectors survive pruning to split
    /// on, portfolio for the few-selector instances cube splitting cannot
    /// help.
    #[default]
    Auto,
    /// Single sequential solver (the pre-parallel pipeline).
    Sequential,
    /// Deterministic cube-and-conquer over top-ranked selectors.
    Cube,
    /// Seeded portfolio over the whole instance.
    Portfolio,
}

/// Worker threads for the Solve stage. Purely a performance knob: any
/// setting yields byte-identical verdicts and counterexample cycles (see
/// the module docs for why). CLI `--solve-threads N|auto`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SolveThreads {
    /// Use the machine's available parallelism, divided across concurrent
    /// shard pipelines when the history is sharded.
    #[default]
    Auto,
    /// Exactly `n` solver workers per pipeline unit (1 = sequential).
    Fixed(usize),
}

impl SolveThreads {
    /// Resolve to a concrete worker count for one of `units` concurrent
    /// pipeline units. Like `PruneThreads`, absurd fixed values degrade to
    /// oversubscription rather than exhausting the process thread limit.
    pub fn resolve(self, units: usize) -> usize {
        let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        match self {
            SolveThreads::Fixed(n) => n.clamp(1, cores.saturating_mul(4).max(64)),
            SolveThreads::Auto => (cores / units.max(1)).max(1),
        }
    }
}

/// The strategy actually run on one pipeline unit (recorded in
/// [`SolveStats`]; shard merging can mix them).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveModeUsed {
    /// One sequential solver.
    Sequential,
    /// Cube-and-conquer.
    Cube,
    /// Seeded portfolio.
    Portfolio,
    /// Sharded run whose components used different strategies.
    Mixed,
}

impl SolveModeUsed {
    /// Stable lowercase name (CSV columns, JSON reports).
    pub fn name(self) -> &'static str {
        match self {
            SolveModeUsed::Sequential => "sequential",
            SolveModeUsed::Cube => "cube",
            SolveModeUsed::Portfolio => "portfolio",
            SolveModeUsed::Mixed => "mixed",
        }
    }
}

/// Counters of one Solve-stage run (merged across shards like the other
/// stage stats: counts add, the winner survives only if unambiguous).
#[derive(Clone, Copy, Debug)]
pub struct SolveStats {
    /// Strategy that ran.
    pub mode: SolveModeUsed,
    /// Worker threads resolved for the run.
    pub threads: usize,
    /// Cubes (cube mode) or workers (portfolio) launched or skipped.
    pub units: usize,
    /// Selectors fixed per cube (`k`; 0 outside cube mode).
    pub split_selectors: usize,
    /// The deciding unit: the first SAT cube observed, or the portfolio
    /// winner (lowest conflict count, then lowest index). `None` for
    /// sequential runs and all-UNSAT cube runs.
    pub winner: Option<usize>,
    /// Units that completed SAT.
    pub sat_units: usize,
    /// Units that completed UNSAT.
    pub unsat_units: usize,
    /// Units skipped or interrupted once the verdict was already decided.
    pub cancelled_units: usize,
    /// Solver counters summed over completed units.
    pub solver: SolverStats,
}

impl SolveStats {
    fn sequential(threads: usize, solver: SolverStats) -> SolveStats {
        SolveStats {
            mode: SolveModeUsed::Sequential,
            threads,
            units: 1,
            split_selectors: 0,
            winner: None,
            sat_units: 0,
            unsat_units: 0,
            cancelled_units: 0,
            solver,
        }
    }

    /// Merge per-shard stats: counts add up, `threads`/`split_selectors`
    /// take the maximum, the mode degrades to [`SolveModeUsed::Mixed`]
    /// when components disagree, and the winner survives only when
    /// exactly one side has one.
    pub fn merge(self, other: SolveStats) -> SolveStats {
        SolveStats {
            mode: if self.mode == other.mode { self.mode } else { SolveModeUsed::Mixed },
            threads: self.threads.max(other.threads),
            units: self.units + other.units,
            split_selectors: self.split_selectors.max(other.split_selectors),
            winner: match (self.winner, other.winner) {
                (Some(w), None) => Some(w),
                (None, Some(w)) => Some(w),
                _ => None,
            },
            sat_units: self.sat_units + other.sat_units,
            unsat_units: self.unsat_units + other.unsat_units,
            cancelled_units: self.cancelled_units + other.cancelled_units,
            solver: merge_solver_stats(self.solver, other.solver),
        }
    }
}

pub(crate) fn merge_solver_stats(a: SolverStats, b: SolverStats) -> SolverStats {
    SolverStats {
        decisions: a.decisions + b.decisions,
        propagations: a.propagations + b.propagations,
        conflicts: a.conflicts + b.conflicts,
        theory_conflicts: a.theory_conflicts + b.theory_conflicts,
        learned_clauses: a.learned_clauses + b.learned_clauses,
        restarts: a.restarts + b.restarts,
    }
}

/// Resolved per-unit solve configuration (the engine computes this once
/// per check from `EngineOptions`).
#[derive(Clone, Copy, Debug)]
pub struct SolvePlan {
    /// Requested strategy ([`SolveMode::Auto`] decides per instance).
    pub mode: SolveMode,
    /// Concrete worker count (≥ 1).
    pub threads: usize,
}

impl Default for SolvePlan {
    fn default() -> Self {
        SolvePlan { mode: SolveMode::Auto, threads: 1 }
    }
}

/// Below this many surviving selectors, cube splitting cannot carve a
/// meaningful partition and `Auto` races a portfolio instead.
const CUBE_MIN_SELECTORS: usize = 8;

/// Bounds of the adaptive cube depth: at least `2^3` cubes (the former
/// fixed split) and at most `2^6` — beyond that the per-cube clone cost
/// dominates anything assumption-level pruning can recover.
const CUBE_SPLIT_MIN: usize = 3;
const CUBE_SPLIT_MAX: usize = 6;

/// Selectors fixed per cube (`2^k` cubes), adapted to the instance: the
/// depth grows logarithmically with the surviving selector count (big
/// instances can amortize more cubes), plus one when the ranking scores
/// are sharply skewed (a dominant selector means the top few decisions
/// really decompose the search — the overlapping-clique shape) — and
/// shrinks by one when the spread is flat (equal scores make extra splits
/// near-redundant subspaces). A pure function of the polygraph and the
/// degree hints, never of the thread count, so the cube set — and with it
/// every per-cube result — is the same for any `--solve-threads`.
fn cube_depth(selectors: usize, ranked: &[usize], score: impl Fn(usize) -> u64) -> usize {
    debug_assert!(selectors >= 1 && ranked.len() == selectors);
    // floor(log2(selectors)) - 2: 8..15 → 1, …, 1024.. → 8, then clamped.
    let log2 = usize::BITS as usize - 1 - selectors.leading_zeros() as usize;
    let mut k = log2.saturating_sub(2);
    let top = score(ranked[0]).max(1);
    let mid = score(ranked[selectors / 2]).max(1);
    if top >= 4 * mid {
        k += 1;
    } else if top <= 2 * mid {
        k = k.saturating_sub(1);
    }
    k.clamp(CUBE_SPLIT_MIN, CUBE_SPLIT_MAX).min(selectors)
}

/// Solve the encoded instance of `g`. `solver` must be the freshly
/// encoded pre-solve state (one selector variable per surviving
/// constraint, in constraint order); `degrees` optionally supplies
/// transaction degrees (unit-local ids) for the cube ranking — absent,
/// degrees are derived from the polygraph's own constraint edges.
///
/// Returns the SAT verdict and the run's [`SolveStats`]. On UNSAT the
/// caller extracts the counterexample from `g`, never from solver state.
pub fn run_solve(
    g: &Polygraph,
    solver: Solver,
    degrees: Option<&[u32]>,
    plan: &SolvePlan,
) -> (bool, SolveStats) {
    let selectors = g.constraints.len();
    let mode = match plan.mode {
        SolveMode::Auto => {
            if plan.threads <= 1 || selectors == 0 {
                SolveMode::Sequential
            } else if selectors >= CUBE_MIN_SELECTORS {
                SolveMode::Cube
            } else {
                SolveMode::Portfolio
            }
        }
        explicit => explicit,
    };
    match mode {
        SolveMode::Cube if selectors > 0 => cube_solve(g, solver, degrees, plan.threads),
        SolveMode::Portfolio => portfolio_solve(solver, plan.threads),
        _ => {
            let mut solver = solver;
            let sat = match solver.solve() {
                SolveResult::Sat(_) => true,
                SolveResult::Unsat => false,
                SolveResult::Unknown => unreachable!("the engine sets no conflict budget"),
            };
            (sat, SolveStats::sequential(plan.threads, *solver.stats()))
        }
    }
}

/// Encode `g` (with optional phase seeding) and solve it under `plan` —
/// the standalone entry point used by the `solve` bench's mode ablation
/// and the cube≡sequential property tests. The engine itself encodes once
/// (reusing the prune oracle for phase seeding) and calls [`run_solve`]
/// directly.
pub fn solve_polygraph(g: &Polygraph, phase_seeding: bool, plan: &SolvePlan) -> (bool, SolveStats) {
    solve_polygraph_with(g, phase_seeding, None, plan)
}

/// [`solve_polygraph`] with explicit transaction-degree hints for the
/// cube ranking (what the engine supplies from `Facts::txn_degree`;
/// without them the ranking falls back to degrees derived from the
/// constraint edges alone).
pub fn solve_polygraph_with(
    g: &Polygraph,
    phase_seeding: bool,
    degrees: Option<&[u32]>,
    plan: &SolvePlan,
) -> (bool, SolveStats) {
    let (solver, _) =
        crate::engine::encode(g, phase_seeding, None, polysi_polygraph::OracleKind::Auto);
    run_solve(g, solver, degrees, plan)
}

/// Encode `g` into a fresh pre-solve [`Solver`] (one selector variable
/// per constraint, phases seeded along the known graph's topological
/// order when requested) — the state [`run_solve`] consumes. Exposed for
/// the `solve` bench, which encodes once and clones per measured
/// configuration so the timed interval is the solve stage alone.
pub fn encode_polygraph(g: &Polygraph, phase_seeding: bool) -> Solver {
    crate::engine::encode(g, phase_seeding, None, polysi_polygraph::OracleKind::Auto).0
}

/// Rank selectors for cube splitting: a selector scores the summed
/// transaction degree over its constraint's edge endpoints — the most
/// contended constraints interact with the most others, so fixing them
/// first decomposes the search best. Ties break toward the lower
/// constraint index; the ranking is a pure function of the polygraph (and
/// the optional degree hints), never of thread count or timing.
fn rank_selectors(g: &Polygraph, deg: &[u32]) -> Vec<usize> {
    let mut ranked: Vec<usize> = (0..g.constraints.len()).collect();
    ranked.sort_by_key(|&ci| (std::cmp::Reverse(selector_score(g, deg, ci)), ci));
    ranked
}

/// Fallback transaction degrees when the caller supplies no hints:
/// endpoint counts over the constraint edges alone.
fn derive_degrees(g: &Polygraph) -> Vec<u32> {
    let mut d = vec![0u32; g.n];
    for cons in &g.constraints {
        for e in cons.either.iter().chain(&cons.or) {
            d[e.from.idx()] += 1;
            d[e.to.idx()] += 1;
        }
    }
    d
}

/// One selector's ranking score: summed transaction degree over its
/// constraint's edge endpoints.
fn selector_score(g: &Polygraph, deg: &[u32], ci: usize) -> u64 {
    let cons = &g.constraints[ci];
    cons.either
        .iter()
        .chain(&cons.or)
        .map(|e| deg[e.from.idx()] as u64 + deg[e.to.idx()] as u64)
        .sum()
}

/// What one cube/portfolio unit reported.
enum UnitOutcome {
    Sat,
    Unsat,
    Cancelled,
}

/// Deterministic cube-and-conquer (see the module docs).
fn cube_solve(
    g: &Polygraph,
    base: Solver,
    degrees: Option<&[u32]>,
    threads: usize,
) -> (bool, SolveStats) {
    let selectors = g.constraints.len();
    debug_assert_eq!(
        base.num_vars(),
        selectors,
        "encode allocates exactly one selector var per constraint"
    );
    let derived: Vec<u32>;
    let deg: &[u32] = match degrees {
        Some(d) => d,
        None => {
            derived = derive_degrees(g);
            &derived
        }
    };
    let ranked = rank_selectors(g, deg);
    let k = cube_depth(selectors, &ranked, |ci| selector_score(g, deg, ci));
    let split: Vec<Var> = ranked[..k].iter().map(|&ci| Var(ci as u32)).collect();
    let cubes = 1usize << k;
    // Cube i: selector bit b keeps its seeded phase iff bit b of i is 0.
    let cube_lits = |i: usize| -> Vec<Lit> {
        split
            .iter()
            .enumerate()
            .map(|(b, &v)| Lit::new(v, base.phase(v) ^ (i >> b & 1 == 1)))
            .collect()
    };
    let sat_found = Arc::new(AtomicBool::new(false));
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, UnitOutcome, SolverStats)>> =
        Mutex::new(Vec::with_capacity(cubes));
    let workers = threads.min(cubes).max(1);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cubes {
                    break;
                }
                // A SAT cube decides the run: later cubes are skipped, not
                // solved (accept on first SAT).
                if sat_found.load(Ordering::Relaxed) {
                    results.lock().expect("cube worker panicked").push((
                        i,
                        UnitOutcome::Cancelled,
                        SolverStats::default(),
                    ));
                    continue;
                }
                let mut solver = base.clone();
                solver.set_interrupt(Arc::clone(&sat_found));
                let outcome = match solver.solve_with_assumptions(&cube_lits(i)) {
                    SolveResult::Sat(_) => {
                        sat_found.store(true, Ordering::Relaxed);
                        UnitOutcome::Sat
                    }
                    SolveResult::Unsat => UnitOutcome::Unsat,
                    SolveResult::Unknown => UnitOutcome::Cancelled,
                };
                results.lock().expect("cube worker panicked").push((i, outcome, *solver.stats()));
            });
        }
    });
    let mut units = results.into_inner().expect("cube worker panicked");
    units.sort_by_key(|&(i, _, _)| i);
    finish_units(SolveModeUsed::Cube, threads, k, units)
}

/// Seeded portfolio: `threads` deterministic variations race the whole
/// instance; the first finisher cancels the rest.
fn portfolio_solve(base: Solver, threads: usize) -> (bool, SolveStats) {
    let workers = threads.max(1);
    let done = Arc::new(AtomicBool::new(false));
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, UnitOutcome, SolverStats)>> =
        Mutex::new(Vec::with_capacity(workers));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= workers {
                    break;
                }
                if done.load(Ordering::Relaxed) {
                    results.lock().expect("portfolio worker panicked").push((
                        i,
                        UnitOutcome::Cancelled,
                        SolverStats::default(),
                    ));
                    continue;
                }
                let mut solver = base.clone();
                solver.reseed(i as u64);
                solver.set_interrupt(Arc::clone(&done));
                let outcome = match solver.solve() {
                    SolveResult::Sat(_) => UnitOutcome::Sat,
                    SolveResult::Unsat => UnitOutcome::Unsat,
                    SolveResult::Unknown => UnitOutcome::Cancelled,
                };
                if !matches!(outcome, UnitOutcome::Cancelled) {
                    done.store(true, Ordering::Relaxed);
                }
                results.lock().expect("portfolio worker panicked").push((
                    i,
                    outcome,
                    *solver.stats(),
                ));
            });
        }
    });
    let mut units = results.into_inner().expect("portfolio worker panicked");
    units.sort_by_key(|&(i, _, _)| i);
    finish_units(SolveModeUsed::Portfolio, threads, 0, units)
}

/// Fold per-unit outcomes into the verdict and merged stats. Cube mode:
/// SAT iff any cube completed SAT (all cubes UNSAT otherwise — cancelled
/// units only ever exist when the verdict was already decided).
/// Portfolio: every completed unit agrees; the winner is the completed
/// unit with the fewest conflicts, lowest index on ties.
fn finish_units(
    mode: SolveModeUsed,
    threads: usize,
    split: usize,
    units: Vec<(usize, UnitOutcome, SolverStats)>,
) -> (bool, SolveStats) {
    let mut stats = SolveStats {
        mode,
        threads,
        units: units.len(),
        split_selectors: split,
        winner: None,
        sat_units: 0,
        unsat_units: 0,
        cancelled_units: 0,
        solver: SolverStats::default(),
    };
    let mut best: Option<(u64, usize)> = None;
    for (i, outcome, solver) in &units {
        match outcome {
            UnitOutcome::Sat => stats.sat_units += 1,
            UnitOutcome::Unsat => stats.unsat_units += 1,
            UnitOutcome::Cancelled => {
                stats.cancelled_units += 1;
                continue;
            }
        }
        stats.solver = merge_solver_stats(stats.solver, *solver);
        let key = (solver.conflicts, *i);
        match mode {
            // First SAT cube in index order.
            SolveModeUsed::Cube => {
                if matches!(outcome, UnitOutcome::Sat) && stats.winner.is_none() {
                    stats.winner = Some(*i);
                }
            }
            // Lowest conflicts, then lowest index, among finishers.
            _ => {
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                    stats.winner = Some(*i);
                }
            }
        }
    }
    let sat = stats.sat_units > 0;
    debug_assert!(
        mode != SolveModeUsed::Portfolio || stats.sat_units == 0 || stats.unsat_units == 0,
        "portfolio workers decided the same instance differently"
    );
    debug_assert!(
        stats.sat_units + stats.unsat_units > 0,
        "at least one unit must complete before cancellation can start"
    );
    (sat, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysi_history::TxnId;
    use polysi_polygraph::{Constraint, Edge, Label, Semantics};

    fn ww(f: u32, t: u32) -> Edge {
        Edge::new(TxnId(f), TxnId(t), Label::Ww(polysi_history::Key(0)))
    }

    /// A polygraph whose solver instance is SAT: a ring of WW choices
    /// (acyclic orientations exist).
    fn ring(n: u32) -> Polygraph {
        let constraints = (0..n)
            .map(|i| Constraint {
                key: polysi_history::Key(0),
                either: vec![ww(i, (i + 1) % n)],
                or: vec![ww((i + 1) % n, i)],
            })
            .collect();
        Polygraph { n: n as usize, known: Vec::new(), constraints, semantics: Semantics::Si }
    }

    fn encode(g: &Polygraph) -> Solver {
        crate::engine::encode(g, true, None, polysi_polygraph::OracleKind::Auto).0
    }

    #[test]
    fn auto_picks_by_selector_count_and_threads() {
        let g = ring(12);
        let seq = run_solve(&g, encode(&g), None, &SolvePlan { mode: SolveMode::Auto, threads: 1 });
        assert!(seq.0);
        assert_eq!(seq.1.mode, SolveModeUsed::Sequential);
        let cube =
            run_solve(&g, encode(&g), None, &SolvePlan { mode: SolveMode::Auto, threads: 4 });
        assert!(cube.0);
        assert_eq!(cube.1.mode, SolveModeUsed::Cube);
        let small = ring(3);
        let port = run_solve(
            &small,
            encode(&small),
            None,
            &SolvePlan { mode: SolveMode::Auto, threads: 4 },
        );
        assert!(port.0);
        assert_eq!(port.1.mode, SolveModeUsed::Portfolio);
    }

    #[test]
    fn cube_and_portfolio_agree_with_sequential_on_unsat() {
        // Make the ring unsatisfiable: known edges force both directions
        // between 0 and 1, so every orientation of the 0↔1 constraint
        // closes a cycle.
        let mut g = ring(10);
        g.known.push(ww(0, 1));
        g.known.push(ww(1, 0));
        for mode in [SolveMode::Sequential, SolveMode::Cube, SolveMode::Portfolio] {
            for threads in [1usize, 4] {
                let (sat, stats) = run_solve(&g, encode(&g), None, &SolvePlan { mode, threads });
                assert!(!sat, "{mode:?}/{threads} accepted an UNSAT instance");
                if stats.mode == SolveModeUsed::Cube {
                    assert_eq!(stats.winner, None, "all-UNSAT cube runs have no winner");
                    assert_eq!(stats.unsat_units + stats.cancelled_units, stats.units);
                }
            }
        }
    }

    #[test]
    fn cube_set_is_thread_independent() {
        let g = ring(16);
        for threads in [1usize, 2, 8] {
            let (sat, stats) =
                run_solve(&g, encode(&g), None, &SolvePlan { mode: SolveMode::Cube, threads });
            assert!(sat);
            // ring(16): equal scores (flat spread) → the minimum depth.
            assert_eq!(stats.split_selectors, CUBE_SPLIT_MIN);
            assert_eq!(stats.units, 1 << CUBE_SPLIT_MIN);
        }
    }

    #[test]
    fn cube_depth_adapts_to_size_and_spread() {
        let flat = |_: usize| 10u64;
        let ranked: Vec<usize> = (0..8).collect();
        assert_eq!(cube_depth(8, &ranked, flat), CUBE_SPLIT_MIN);
        let ranked: Vec<usize> = (0..64).collect();
        // log2(64)-2 = 4, flat spread → 3.
        assert_eq!(cube_depth(64, &ranked, flat), 3);
        // A dominant top selector deepens the split by one.
        let skew = |ci: usize| if ci == 0 { 100u64 } else { 10 };
        assert_eq!(cube_depth(64, &ranked, skew), 5);
        // Large instances saturate at the cap.
        let ranked: Vec<usize> = (0..4096).collect();
        assert_eq!(cube_depth(4096, &ranked, flat), CUBE_SPLIT_MAX);
        assert_eq!(cube_depth(4096, &ranked, skew), CUBE_SPLIT_MAX);
        // Never more splits than selectors (explicit Cube mode on tiny
        // instances).
        let ranked: Vec<usize> = (0..2).collect();
        assert_eq!(cube_depth(2, &ranked, flat), 2);
    }

    /// Adaptive depth keeps the determinism contract: identical verdicts
    /// for every thread count at every instance size the depth rule can
    /// pick differently.
    #[test]
    fn cube_depths_agree_with_sequential_across_sizes() {
        for n in [8u32, 20, 40, 70] {
            let g = ring(n);
            let (seq, _) = run_solve(
                &g,
                encode(&g),
                None,
                &SolvePlan { mode: SolveMode::Sequential, threads: 1 },
            );
            for threads in [1usize, 4] {
                let (sat, stats) =
                    run_solve(&g, encode(&g), None, &SolvePlan { mode: SolveMode::Cube, threads });
                assert_eq!(sat, seq, "ring({n}) cube/{threads} diverged");
                assert_eq!(stats.units, 1 << stats.split_selectors);
            }
        }
    }

    #[test]
    fn ranking_is_deterministic_and_degree_driven() {
        let mut g = ring(8);
        // Tie-break: equal scores rank by index (derived degrees).
        assert_eq!(rank_selectors(&g, &derive_degrees(&g))[0], 0);
        // A hub transaction boosts every constraint touching it.
        g.constraints.push(Constraint {
            key: polysi_history::Key(1),
            either: vec![ww(0, 4)],
            or: vec![ww(4, 0)],
        });
        let degrees: Vec<u32> = (0..8).map(|i| if i == 4 { 100 } else { 1 }).collect();
        let ranked = rank_selectors(&g, &degrees);
        let top = ranked[0];
        let touches_hub = |ci: usize| {
            let c = &g.constraints[ci];
            c.either.iter().chain(&c.or).any(|e| e.from == TxnId(4) || e.to == TxnId(4))
        };
        assert!(touches_hub(top), "top selector must touch the high-degree txn");
    }

    #[test]
    fn portfolio_winner_reported() {
        let g = ring(4);
        let (sat, stats) =
            run_solve(&g, encode(&g), None, &SolvePlan { mode: SolveMode::Portfolio, threads: 1 });
        assert!(sat);
        // One thread: worker 0 finishes first and wins outright.
        assert_eq!(stats.winner, Some(0));
        assert_eq!(stats.sat_units, 1);
    }

    #[test]
    fn solve_threads_resolve() {
        assert_eq!(SolveThreads::Fixed(3).resolve(8), 3);
        assert_eq!(SolveThreads::Fixed(0).resolve(1), 1);
        assert!(SolveThreads::Auto.resolve(1) >= 1);
        assert!(SolveThreads::Auto.resolve(usize::MAX) >= 1);
        let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        assert_eq!(SolveThreads::Fixed(usize::MAX).resolve(1), cores.saturating_mul(4).max(64));
    }
}
