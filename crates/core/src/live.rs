//! The live ingest service: a fault-tolerant concurrent front end over the
//! [`StreamingChecker`].
//!
//! # Architecture
//!
//! Two layers, split so determinism stays testable:
//!
//! * [`LiveChecker`] — the **deterministic ingest hub**. One call per
//!   delivered message ([`LiveChecker::deliver`]): per-session sequence
//!   numbers heal at-least-once transports (exact duplicate drop, bounded
//!   reorder buffered until the gap fills), structural faults surface as
//!   typed [`IngestError`]s and abandon the offending session (never a
//!   panic, never a silent skip — every fault lands in the
//!   [`LiveReport`]), checkpoints fire on a configurable cadence, and a
//!   stall watchdog stretches the cadence while a reorder gap is open —
//!   up to a patience budget, after which the checkpoint runs anyway and
//!   is flagged **degraded**. Single-threaded and clock-free in its
//!   control flow, so a delivery script fully determines its behavior.
//! * [`LiveService`] — the **concurrent wrapper**: one bounded
//!   [`sync_channel`] queue per session (producers block on a full queue —
//!   backpressure, not unbounded buffering), [`LiveClient`] handles for
//!   producer threads, and a drain thread that round-robins the queues
//!   into the hub (a wedged session never blocks the others) with a
//!   wall-clock stall watchdog for the case where the cadence is overdue
//!   but no further deliveries arrive to advance the count-based one.
//!
//! # Delivery contract
//!
//! *Tolerable* faults — duplicated deliveries and within-session reorder
//! inside the configured window (and not across a checkpoint or the
//! session's `Seal`) — are healed exactly: every checkpoint's verdict,
//! violation list, and witness are **byte-identical to clean delivery**.
//! This follows from the determinism discipline: a checkpoint's verdict is
//! a canonical function of the *session-major snapshot*, i.e. of the set
//! of transactions ingested per session, and healing restores exactly the
//! clean per-session prefixes at every non-degraded checkpoint.
//! Property-tested by `crates/polysi/tests/live.rs`.
//!
//! *Structural* faults — a torn transaction from a client crash, a push
//! after `Seal`, an empty transaction, reorder beyond the window, a seal
//! whose declared count cannot be met — are typed [`IngestError`]s: the
//! offending session degrades (an empty transaction's slot is consumed
//! and skipped; the others abandon the session at its last good
//! transaction), the fault is recorded in the [`LiveReport`], and every
//! other session's verdict is unaffected.

use crate::engine::{EngineOptions, IsolationLevel};
use crate::stream::{CheckpointReport, StreamVerdict, StreamingChecker};
pub use polysi_history::live::{Delivery, IngestError};
use polysi_history::{Op, SessionId, TxnStatus};
use polysi_obs::{kv, Obs};
use std::collections::BTreeMap;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};
use std::time::{Duration, Instant};

/// Knobs of the live ingest service.
#[derive(Clone, Copy, Debug)]
pub struct LiveConfig {
    /// Take a checkpoint every this many ingested transactions
    /// (0 = only explicit [`LiveChecker::checkpoint_now`] / final).
    pub checkpoint_every: usize,
    /// Heal within-session reorder up to this many sequence numbers ahead
    /// of the next expected one; beyond it the fault is structural.
    pub reorder_window: u64,
    /// Count-based stall patience: with the cadence reached but a reorder
    /// gap still open, wait for up to this many further deliveries before
    /// checkpointing anyway (degraded).
    pub stall_patience: usize,
    /// Bound of each session's delivery queue ([`LiveService`] only):
    /// producers block once it fills.
    pub queue_capacity: usize,
    /// Wall-clock stall watchdog ([`LiveService`] only): with the cadence
    /// overdue and no deliveries arriving, force a (possibly degraded)
    /// checkpoint after this long.
    pub stall_timeout: Duration,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            checkpoint_every: 256,
            reorder_window: 16,
            stall_patience: 64,
            queue_capacity: 64,
            stall_timeout: Duration::from_millis(50),
        }
    }
}

/// One checkpoint taken by the live hub.
#[derive(Clone, Debug)]
pub struct LiveCheckpoint {
    /// The underlying streaming checkpoint (verdict, counters, elapsed).
    pub report: CheckpointReport,
    /// Whether the stall watchdog forced this checkpoint while reorder
    /// gaps were still open: the covered prefix excludes the buffered
    /// transactions, so it is *not* the clean-delivery prefix.
    pub degraded: bool,
    /// Sessions with an open reorder gap at checkpoint time.
    pub stalled: Vec<SessionId>,
}

/// Ingest counters of a live run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Messages delivered to the hub (including faulty ones).
    pub delivered: usize,
    /// Transactions ingested into the checker.
    pub ingested: usize,
    /// Exact duplicates dropped (transactions and seals).
    pub duplicates: usize,
    /// Transactions that arrived ahead of sequence and were healed by
    /// buffering.
    pub healed: usize,
    /// Sessions sealed (client `Seal` or structural abandonment).
    pub sealed: usize,
}

/// Everything a live run produced: the checkpoint trail, every ingest
/// fault (typed, per session), and the counters.
#[derive(Clone, Debug)]
pub struct LiveReport {
    /// Checkpoints in order; the last one covers the final prefix.
    pub checkpoints: Vec<LiveCheckpoint>,
    /// Every structural fault, in delivery order.
    pub faults: Vec<(SessionId, IngestError)>,
    /// Sessions never sealed when the run finished (abandoned clients).
    pub abandoned: Vec<SessionId>,
    /// Ingest counters.
    pub stats: LiveStats,
}

impl LiveReport {
    /// The final verdict (of the last checkpoint).
    pub fn verdict(&self) -> &StreamVerdict {
        &self.checkpoints.last().expect("a finished run has a final checkpoint").report.verdict
    }
}

/// Per-session delivery state: the sequence-number state machine that
/// heals tolerable faults and detects structural ones.
struct Lane {
    sid: SessionId,
    /// Next sequence number to ingest (== transactions ingested or
    /// skipped on this session).
    expected: u64,
    /// Ahead-of-sequence transactions awaiting the gap filler.
    buffer: BTreeMap<u64, (Vec<Op>, TxnStatus)>,
    /// No further (non-duplicate) deliveries accepted: client sealed,
    /// crashed, or was abandoned after a structural fault.
    closed: bool,
}

/// The deterministic live ingest hub (see the module docs).
pub struct LiveChecker {
    cfg: LiveConfig,
    checker: StreamingChecker,
    obs: Obs,
    lanes: Vec<Lane>,
    /// Transactions ingested since the last checkpoint.
    since_cp: usize,
    /// Deliveries processed while the cadence was due but deferred on an
    /// open reorder gap.
    overdue: usize,
    checkpoints: Vec<LiveCheckpoint>,
    faults: Vec<(SessionId, IngestError)>,
    stats: LiveStats,
}

impl LiveChecker {
    /// A live hub checking `isolation` with the given engine knobs.
    pub fn new(isolation: IsolationLevel, opts: EngineOptions, cfg: LiveConfig) -> Self {
        LiveChecker {
            cfg,
            checker: StreamingChecker::new(isolation, opts),
            obs: Obs::default(),
            lanes: Vec::new(),
            since_cp: 0,
            overdue: 0,
            checkpoints: Vec::new(),
            faults: Vec::new(),
            stats: LiveStats::default(),
        }
    }

    /// Attach an observability bundle: spans and metrics flow through the
    /// hub into the underlying [`StreamingChecker`].
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.checker = self.checker.with_obs(obs.clone());
        self.obs = obs;
        self
    }

    /// The observability bundle attached to this hub.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Open a new session lane; returns its id.
    pub fn session(&mut self) -> SessionId {
        let sid = self.checker.session();
        self.lanes.push(Lane { sid, expected: 0, buffer: BTreeMap::new(), closed: false });
        sid
    }

    /// The underlying streaming checker (read access).
    pub fn checker(&self) -> &StreamingChecker {
        &self.checker
    }

    /// Checkpoints taken so far.
    pub fn checkpoints(&self) -> &[LiveCheckpoint] {
        &self.checkpoints
    }

    /// Structural faults recorded so far.
    pub fn faults(&self) -> &[(SessionId, IngestError)] {
        &self.faults
    }

    /// Process one delivered message. Tolerable faults are healed and
    /// return `Ok`; structural faults are recorded (the session degrades
    /// as documented on [`IngestError`]) and returned. Never panics.
    pub fn deliver(&mut self, session: SessionId, msg: Delivery) -> Result<(), IngestError> {
        self.stats.delivered += 1;
        let before = self.stats;
        let faults_before = self.faults.len();
        let result = self.deliver_inner(session, msg);
        if let Err(e) = &result {
            self.faults.push((session, e.clone()));
        }
        for (sid, fault) in &self.faults[faults_before..] {
            self.obs.tracer.instant("ingest.fault", kv! { session: sid.0, kind: fault.kind() });
            self.obs.metrics.counter("ingest.faults").inc();
        }
        let m = &self.obs.metrics;
        m.counter("ingest.delivered").inc();
        m.counter("ingest.ingested").add((self.stats.ingested - before.ingested) as u64);
        m.counter("ingest.duplicates").add((self.stats.duplicates - before.duplicates) as u64);
        m.counter("ingest.healed").add((self.stats.healed - before.healed) as u64);
        m.counter("ingest.sealed").add((self.stats.sealed - before.sealed) as u64);
        self.auto_checkpoint();
        result
    }

    fn deliver_inner(&mut self, session: SessionId, msg: Delivery) -> Result<(), IngestError> {
        if (session.0 as usize) >= self.lanes.len() {
            return Err(IngestError::UnknownSession { session });
        }
        let lane = &mut self.lanes[session.0 as usize];
        match msg {
            Delivery::Txn { seq, ops, status } => {
                if seq < lane.expected || lane.buffer.contains_key(&seq) {
                    // Exact duplicate: this sequence number was already
                    // ingested (or is already waiting). Tolerable — even
                    // after a seal.
                    self.stats.duplicates += 1;
                    return Ok(());
                }
                if lane.closed {
                    return Err(IngestError::SealedSession { session });
                }
                if seq > lane.expected {
                    if seq - lane.expected > self.cfg.reorder_window {
                        let (expected, window) = (lane.expected, self.cfg.reorder_window);
                        self.abandon(session);
                        return Err(IngestError::ReorderBeyondWindow {
                            session,
                            seq,
                            expected,
                            window,
                        });
                    }
                    self.lanes[session.0 as usize].buffer.insert(seq, (ops, status));
                    return Ok(());
                }
                // The expected transaction: ingest it, then drain every
                // buffered successor it unblocks (healed reorder).
                let mut result = self.ingest(session, ops, status, false);
                while let Some((ops, status)) = {
                    let lane = &mut self.lanes[session.0 as usize];
                    lane.buffer.remove(&lane.expected)
                } {
                    let healed = self.ingest(session, ops, status, true);
                    result = result.and(healed);
                }
                result
            }
            Delivery::Torn { seq, ops: _ } => {
                // Client crash mid-commit: the partial prefix is never
                // ingested; the session is abandoned at its last good
                // transaction.
                self.abandon(session);
                Err(IngestError::TornTransaction { session, seq })
            }
            Delivery::Seal { count } => {
                if lane.closed {
                    // Duplicated seal: tolerable.
                    self.stats.duplicates += 1;
                    return Ok(());
                }
                if count != lane.expected || !lane.buffer.is_empty() {
                    let delivered = lane.expected;
                    self.abandon(session);
                    return Err(IngestError::SealMismatch { session, declared: count, delivered });
                }
                self.close(session);
                Ok(())
            }
        }
    }

    /// Ingest one in-sequence transaction; consumes its sequence slot
    /// even when the transaction itself is malformed (empty).
    fn ingest(
        &mut self,
        session: SessionId,
        ops: Vec<Op>,
        status: TxnStatus,
        healed: bool,
    ) -> Result<(), IngestError> {
        self.lanes[session.0 as usize].expected += 1;
        if ops.is_empty() {
            let e = IngestError::EmptyTransaction { session };
            // Recorded here (not via `deliver`'s single recording) when a
            // *buffered* empty transaction drains behind a gap filler.
            if healed {
                self.faults.push((session, e.clone()));
            }
            return Err(e);
        }
        self.checker.try_push_transaction(session, ops, status)?;
        self.since_cp += 1;
        self.stats.ingested += 1;
        self.stats.healed += healed as usize;
        Ok(())
    }

    /// Close a lane cleanly (client `Seal`).
    fn close(&mut self, session: SessionId) {
        let lane = &mut self.lanes[session.0 as usize];
        if !lane.closed {
            lane.closed = true;
            self.stats.sealed += 1;
            let _ = self.checker.try_seal_session(session);
        }
    }

    /// Abandon a lane after a structural fault: drop anything buffered and
    /// seal it at its last good transaction (degrade loudly, then move on
    /// — the other sessions are unaffected).
    fn abandon(&mut self, session: SessionId) {
        self.lanes[session.0 as usize].buffer.clear();
        self.close(session);
    }

    /// Whether the count-based cadence is due (used by the service's
    /// wall-clock watchdog when no deliveries arrive to advance it).
    pub fn cadence_due(&self) -> bool {
        self.cfg.checkpoint_every > 0 && self.since_cp >= self.cfg.checkpoint_every
    }

    /// Sessions with an open reorder gap.
    fn stalled(&self) -> Vec<SessionId> {
        self.lanes.iter().filter(|l| !l.buffer.is_empty()).map(|l| l.sid).collect()
    }

    /// The count-based cadence + stall watchdog: checkpoint when due,
    /// stretching past open reorder gaps for up to `stall_patience`
    /// further deliveries, then degrade.
    fn auto_checkpoint(&mut self) {
        if !self.cadence_due() {
            return;
        }
        if self.stalled().is_empty() {
            self.checkpoint_now();
        } else {
            self.overdue += 1;
            if self.overdue > self.cfg.stall_patience {
                self.checkpoint_now();
            }
        }
    }

    /// Take a checkpoint right now, flagged degraded when reorder gaps
    /// are open (the covered prefix excludes what they buffer).
    pub fn checkpoint_now(&mut self) -> &LiveCheckpoint {
        let stalled = self.stalled();
        let report = self.checker.checkpoint();
        self.since_cp = 0;
        self.overdue = 0;
        self.checkpoints.push(LiveCheckpoint { report, degraded: !stalled.is_empty(), stalled });
        self.checkpoints.last().expect("just pushed")
    }

    /// Finish the run: a final checkpoint (always — the final verdict must
    /// cover the full ingested prefix) and the consolidated report.
    /// Sessions never sealed are reported as abandoned. The hub stays
    /// readable afterwards (e.g. for the canonical rejection report via
    /// [`LiveChecker::checker`]).
    pub fn finish(&mut self) -> LiveReport {
        self.checkpoint_now();
        let abandoned: Vec<SessionId> =
            self.lanes.iter().filter(|l| !l.closed).map(|l| l.sid).collect();
        LiveReport {
            checkpoints: self.checkpoints.clone(),
            faults: self.faults.clone(),
            abandoned,
            stats: self.stats,
        }
    }
}

/// A producer handle for one live session: assigns sequence numbers and
/// sends over the session's bounded queue, blocking when it is full
/// (backpressure).
pub struct LiveClient {
    session: SessionId,
    tx: SyncSender<Delivery>,
    next_seq: u64,
}

impl LiveClient {
    /// This client's session id.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The sequence number the next [`LiveClient::push`] will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Send the next transaction (blocking while the queue is full).
    pub fn push(&mut self, ops: Vec<Op>, status: TxnStatus) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.send(Delivery::Txn { seq, ops, status });
    }

    /// Send a raw protocol message — the fault-injection entry point
    /// (duplicates, reordered seqs, torn transactions). Blocking; a send
    /// after the service finished is dropped.
    pub fn send(&self, msg: Delivery) {
        let _ = self.tx.send(msg);
    }

    /// Seal the session (`Seal { count }` with this client's own count)
    /// and close the queue.
    pub fn seal(self) {
        self.send(Delivery::Seal { count: self.next_seq });
    }
}

/// The concurrent live service: a [`LiveChecker`] hub on its own drain
/// thread, fed through channel-per-session bounded queues.
pub struct LiveService {
    handle: std::thread::JoinHandle<LiveReport>,
}

impl LiveService {
    /// Spawn the service with `sessions` lanes; returns one [`LiveClient`]
    /// per lane. Producers run concurrently with the drain loop; dropping
    /// a client (or [`LiveClient::seal`]) closes its queue.
    pub fn spawn(
        isolation: IsolationLevel,
        opts: EngineOptions,
        cfg: LiveConfig,
        sessions: usize,
    ) -> (LiveService, Vec<LiveClient>) {
        Self::spawn_with_obs(isolation, opts, cfg, sessions, Obs::default())
    }

    /// [`LiveService::spawn`] with an observability bundle attached to the
    /// hub (spans and metrics are recorded from the drain thread).
    pub fn spawn_with_obs(
        isolation: IsolationLevel,
        opts: EngineOptions,
        cfg: LiveConfig,
        sessions: usize,
        obs: Obs,
    ) -> (LiveService, Vec<LiveClient>) {
        let mut hub = LiveChecker::new(isolation, opts, cfg).with_obs(obs);
        let mut clients = Vec::with_capacity(sessions);
        let mut rxs: Vec<(SessionId, Receiver<Delivery>)> = Vec::with_capacity(sessions);
        for _ in 0..sessions {
            let sid = hub.session();
            let (tx, rx) = sync_channel(cfg.queue_capacity.max(1));
            clients.push(LiveClient { session: sid, tx, next_seq: 0 });
            rxs.push((sid, rx));
        }
        let handle = std::thread::spawn(move || Self::drain(hub, rxs));
        (LiveService { handle }, clients)
    }

    /// The drain loop: round-robin one message per open session per round
    /// — a wedged session never blocks the others — plus the wall-clock
    /// stall watchdog for an overdue cadence with no deliveries arriving.
    fn drain(mut hub: LiveChecker, rxs: Vec<(SessionId, Receiver<Delivery>)>) -> LiveReport {
        let stall_timeout = hub.cfg.stall_timeout;
        let mut open = vec![true; rxs.len()];
        let mut last_progress = Instant::now();
        loop {
            let mut progressed = false;
            for (i, (sid, rx)) in rxs.iter().enumerate() {
                if !open[i] {
                    continue;
                }
                match rx.try_recv() {
                    Ok(msg) => {
                        // Faults are recorded in the report; the producer
                        // is already gone from this side of the queue.
                        let _ = hub.deliver(*sid, msg);
                        progressed = true;
                    }
                    Err(TryRecvError::Empty) => {}
                    Err(TryRecvError::Disconnected) => {
                        open[i] = false;
                        progressed = true;
                    }
                }
            }
            if progressed {
                last_progress = Instant::now();
                continue;
            }
            if open.iter().all(|o| !o) {
                return hub.finish();
            }
            if hub.cadence_due() && last_progress.elapsed() >= stall_timeout {
                hub.checkpoint_now();
                last_progress = Instant::now();
            }
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    /// Wait for every queue to close and return the consolidated report
    /// (final checkpoint included).
    pub fn finish(self) -> LiveReport {
        self.handle.join().expect("live drain thread must not panic")
    }
}
