//! Graphviz DOT rendering of violations, mirroring the paper's Figure 5
//! visuals: transactions as boxes listing their operations, dependency
//! types as line styles, uncertain dependencies dashed, restored
//! transactions highlighted.

use crate::interpret::{Certainty, Scenario};
use polysi_history::{History, Op, TxnId};
use polysi_polygraph::{Edge, Label};
use std::collections::HashSet;
use std::fmt::Write as _;

fn node_label(h: &History, t: TxnId) -> String {
    let txn = h.txn(t);
    let mut ops = String::new();
    for (i, op) in txn.ops.iter().enumerate() {
        if i > 0 {
            ops.push_str("\\n");
        }
        match *op {
            Op::Read { key, value } => write!(ops, "R({key},{value})").unwrap(),
            Op::Write { key, value } => write!(ops, "W({key},{value})").unwrap(),
        }
    }
    format!("{}\\n{}", txn.label(), ops)
}

fn edge_attrs(label: Label, certain: bool) -> String {
    let style = match (label, certain) {
        (Label::Rw(_), true) => "dotted",
        (Label::Ww(_), true) => "dashed",
        (_, true) => "solid",
        (_, false) => "dashed",
    };
    let color = if certain { "black" } else { "red" };
    format!("label=\"{label}\", style={style}, color={color}")
}

fn render(h: &History, edges: &[(Edge, Certainty)], highlight: &HashSet<TxnId>) -> String {
    let mut out =
        String::from("digraph violation {\n  node [shape=box, fontname=\"monospace\"];\n");
    let txns: HashSet<TxnId> = edges.iter().flat_map(|(e, _)| [e.from, e.to]).collect();
    let mut txns: Vec<TxnId> = txns.into_iter().collect();
    txns.sort_unstable();
    for t in txns {
        let fill = if highlight.contains(&t) { ", style=filled, fillcolor=palegreen" } else { "" };
        writeln!(out, "  t{} [label=\"{}\"{}];", t.0, node_label(h, t), fill).unwrap();
    }
    for &(e, c) in edges {
        writeln!(
            out,
            "  t{} -> t{} [{}];",
            e.from.0,
            e.to.0,
            edge_attrs(e.label, c == Certainty::Certain)
        )
        .unwrap();
    }
    out.push_str("}\n");
    out
}

/// Render a bare violating cycle.
pub fn cycle_to_dot(h: &History, cycle: &[Edge]) -> String {
    let edges: Vec<(Edge, Certainty)> = cycle.iter().map(|&e| (e, Certainty::Certain)).collect();
    render(h, &edges, &HashSet::new())
}

/// Render an interpreted scenario (recovered stage: tags shown).
pub fn scenario_to_dot(h: &History, s: &Scenario) -> String {
    let highlight: HashSet<TxnId> = s.restored.iter().copied().collect();
    render(h, &s.edges, &highlight)
}

/// Render only the finalized (cause-only) scenario.
pub fn finalized_to_dot(h: &History, s: &Scenario) -> String {
    let edges: Vec<(Edge, Certainty)> =
        s.finalized.iter().map(|&e| (e, Certainty::Certain)).collect();
    let highlight: HashSet<TxnId> = s.restored.iter().copied().collect();
    render(h, &edges, &highlight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysi_history::{HistoryBuilder, Key, Value};

    #[test]
    fn dot_output_is_wellformed() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(Key(1), Value(1)).commit();
        b.session();
        b.begin().read(Key(1), Value(1)).commit();
        let h = b.build();
        let cycle = [
            Edge::new(TxnId(0), TxnId(1), Label::Wr(Key(1))),
            Edge::new(TxnId(1), TxnId(0), Label::Rw(Key(1))),
        ];
        let dot = cycle_to_dot(&h, &cycle);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("t0 -> t1"));
        assert!(dot.contains("WR(1)"));
        assert!(dot.contains("T:(0,0)"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn scenario_marks_restored_nodes() {
        use crate::interpret::interpret;
        use polysi_history::Facts;
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(Key(0), Value(4)).commit();
        b.begin().read(Key(0), Value(4)).write(Key(0), Value(5)).commit();
        b.session();
        b.begin().read(Key(0), Value(4)).write(Key(0), Value(13)).commit();
        let h = b.build();
        let facts = Facts::analyze(&h);
        let cycle = [
            Edge::new(TxnId(1), TxnId(2), Label::Ww(Key(0))),
            Edge::new(TxnId(2), TxnId(1), Label::Rw(Key(0))),
        ];
        let s = interpret(&h, &facts, &cycle);
        let dot = scenario_to_dot(&h, &s);
        assert!(dot.contains("palegreen"), "restored node highlighted:\n{dot}");
        let fin = finalized_to_dot(&h, &s);
        assert!(!fin.contains("color=red"), "finalized has no uncertain edges");
    }
}
