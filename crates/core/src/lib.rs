//! # polysi-checker — the PolySI snapshot-isolation checker
//!
//! A complete reimplementation of the PolySI pipeline (VLDB 2023):
//!
//! 1. **Axioms** — `Int`, aborted reads, intermediate reads, UniqueValue
//!    (via [`polysi_history::Facts`]);
//! 2. **Construction** — the generalized polygraph of the history
//!    ([`polysi_polygraph::Polygraph`]);
//! 3. **Pruning** — resolve constraints whose one side closes a cycle in
//!    the known induced graph (Algorithm 1);
//! 4. **Encoding + solving** — remaining constraints become selector
//!    variables guarding layered graph edges in a SAT-modulo-acyclicity
//!    solver ([`polysi_solver::Solver`]);
//! 5. **Interpretation** — on violation, restore the missing participants
//!    and produce a minimal, classified counterexample
//!    ([`interpret::interpret`], [`anomaly::Anomaly`]).
//!
//! The crate also ships a brute-force [`oracle`] (Theorem 6 executed
//! literally) used by the property-test suite to validate soundness and
//! completeness, a Graphviz [`dot`] renderer, and the PolySI-List extension
//! ([`list`]) for Elle-style list-append histories.
//!
//! ```
//! use polysi_checker::{check_si, CheckOptions, Outcome};
//! use polysi_history::{HistoryBuilder, Key, Value};
//!
//! let mut b = HistoryBuilder::new();
//! b.session();
//! b.begin().write(Key(1), Value(10)).commit();
//! b.session();
//! b.begin().read(Key(1), Value(10)).write(Key(1), Value(11)).commit();
//! b.session();
//! b.begin().read(Key(1), Value(10)).write(Key(1), Value(12)).commit();
//!
//! let report = check_si(&b.build(), &CheckOptions::default());
//! match report.outcome {
//!     Outcome::CyclicViolation(v) => {
//!         println!("anomaly: {}", v.anomaly); // "lost update"
//!     }
//!     _ => unreachable!("this is a lost update"),
//! }
//! ```

pub mod anomaly;
mod check;
pub mod dot;
pub mod engine;
pub mod interpret;
pub mod list;
pub mod live;
pub mod oracle;
pub mod report;
pub mod solve;
pub mod stream;

pub use anomaly::Anomaly;
pub use check::{
    check_si, CheckOptions, CheckReport, EncodeStats, Outcome, StageTimings, Violation,
};
pub use engine::{
    check, CheckEngine, CheckpointThreads, EngineOptions, IsolationLevel, PruneThreads, ShardStats,
    Sharding, Stage,
};
pub use interpret::{Certainty, Scenario};
pub use list::{check_si_list, ListHistory, ListOp, ListReport, ListTxn, ListViolation};
pub use live::{
    LiveChecker, LiveCheckpoint, LiveClient, LiveConfig, LiveReport, LiveService, LiveStats,
};
pub use polysi_history::ShardFallback;
pub use polysi_polygraph::OracleKind;
pub use solve::{SolveMode, SolveModeUsed, SolveStats, SolveThreads};
pub use stream::{CheckpointReport, StreamRejection, StreamVerdict, StreamingChecker};
