//! A brute-force ground-truth oracle for the SI checking problem.
//!
//! Implements Theorem 6 literally: enumerate every combination of per-key
//! version orders (`WW`), derive the anti-dependencies (`RW`), and accept
//! iff some combination makes `(SO ∪ WR ∪ WW) ; RW?` acyclic. Exponential —
//! usable only on tiny histories — but independent of every data structure
//! the real checker uses, which makes it the anchor for the property tests
//! validating soundness and completeness.

use polysi_history::{Facts, History, TxnId};
use polysi_polygraph::{Edge, KnownGraph, KnownGraphResult, Label};

/// Decide SI by exhaustive enumeration. Panics if the search space exceeds
/// `limit` combinations (default guard: call [`oracle_check_si`]).
pub fn oracle_check_si_with_limit(h: &History, limit: u64) -> bool {
    let facts = Facts::analyze(h);
    if !facts.axioms_ok() {
        return false;
    }
    // Keys with at least two writers need an order chosen.
    let contended: Vec<(&polysi_history::Key, &Vec<TxnId>)> =
        facts.writers.iter().filter(|(_, ws)| ws.len() >= 2).collect();
    let combos: u64 = contended
        .iter()
        .map(|(_, ws)| (1..=ws.len() as u64).product::<u64>())
        .try_fold(1u64, u64::checked_mul)
        .expect("combination count overflow");
    assert!(combos <= limit, "oracle search space too large: {combos} > {limit}");

    // Fixed edges: SO, WR, and init-read anti-dependencies to first writers
    // (the initial version is first in every order).
    let mut base: Vec<Edge> = Vec::new();
    for (a, b) in h.so_edges() {
        base.push(Edge::new(a, b, Label::So));
    }
    for (w, r, key) in facts.wr_edges() {
        base.push(Edge::new(w, r, Label::Wr(key)));
    }

    // Enumerate orders per contended key via recursion over permutations.
    let mut orders: Vec<Vec<TxnId>> = contended.iter().map(|(_, ws)| (*ws).clone()).collect();
    let keys: Vec<polysi_history::Key> = contended.iter().map(|(k, _)| **k).collect();
    let single: Vec<(polysi_history::Key, Vec<TxnId>)> = facts
        .writers
        .iter()
        .filter(|(_, ws)| ws.len() == 1)
        .map(|(k, ws)| (*k, ws.clone()))
        .collect();

    fn acyclic_for(
        h: &History,
        facts: &Facts,
        base: &[Edge],
        keys: &[polysi_history::Key],
        orders: &[Vec<TxnId>],
        single: &[(polysi_history::Key, Vec<TxnId>)],
    ) -> bool {
        let mut edges = base.to_vec();
        let add_order = |key: polysi_history::Key, order: &[TxnId], edges: &mut Vec<Edge>| {
            for w in order.windows(2) {
                edges.push(Edge::new(w[0], w[1], Label::Ww(key)));
            }
            // Anti-dependencies: reader of order[i] → order[i+1]; init
            // readers → order[0].
            for (i, &w) in order.iter().enumerate() {
                if let Some(&next) = order.get(i + 1) {
                    for &r in facts.readers_of(key, w) {
                        if r != next {
                            edges.push(Edge::new(r, next, Label::Rw(key)));
                        }
                    }
                }
            }
            if let Some(readers) = facts.init_readers.get(&key) {
                for &r in readers {
                    if r != order[0] {
                        edges.push(Edge::new(r, order[0], Label::Rw(key)));
                    }
                }
            }
        };
        for (key, order) in single {
            add_order(*key, order, &mut edges);
        }
        for (key, order) in keys.iter().zip(orders) {
            add_order(*key, order, &mut edges);
        }
        matches!(KnownGraph::build(h.len(), &edges), KnownGraphResult::Acyclic(_))
    }

    fn rec(
        h: &History,
        facts: &Facts,
        base: &[Edge],
        keys: &[polysi_history::Key],
        orders: &mut [Vec<TxnId>],
        single: &[(polysi_history::Key, Vec<TxnId>)],
        depth: usize,
    ) -> bool {
        if depth == orders.len() {
            return acyclic_for(h, facts, base, keys, orders, single);
        }
        // Heap's algorithm over orders[depth], recursing at each permutation.
        #[allow(clippy::too_many_arguments)]
        fn heaps(
            h: &History,
            facts: &Facts,
            base: &[Edge],
            keys: &[polysi_history::Key],
            orders: &mut [Vec<TxnId>],
            single: &[(polysi_history::Key, Vec<TxnId>)],
            depth: usize,
            k: usize,
        ) -> bool {
            if k <= 1 {
                return rec(h, facts, base, keys, orders, single, depth + 1);
            }
            for i in 0..k {
                if heaps(h, facts, base, keys, orders, single, depth, k - 1) {
                    return true;
                }
                if i < k - 1 {
                    if k.is_multiple_of(2) {
                        orders[depth].swap(i, k - 1);
                    } else {
                        orders[depth].swap(0, k - 1);
                    }
                }
            }
            false
        }
        let k = orders[depth].len();
        heaps(h, facts, base, keys, orders, single, depth, k)
    }

    rec(h, &facts, &base, &keys, &mut orders, &single, 0)
}

/// [`oracle_check_si_with_limit`] with a 1M-combination guard.
pub fn oracle_check_si(h: &History) -> bool {
    oracle_check_si_with_limit(h, 1_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysi_history::{HistoryBuilder, Key, Value};

    fn k(n: u64) -> Key {
        Key(n)
    }
    fn v(n: u64) -> Value {
        Value(n)
    }

    #[test]
    fn serial_accepted() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).commit();
        b.begin().read(k(1), v(1)).write(k(1), v(2)).commit();
        assert!(oracle_check_si(&b.build()));
    }

    #[test]
    fn lost_update_rejected() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(1), v(2)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(1), v(3)).commit();
        assert!(!oracle_check_si(&b.build()));
    }

    #[test]
    fn write_skew_accepted() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).write(k(2), v(2)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(2), v(22)).commit();
        b.session();
        b.begin().read(k(2), v(2)).write(k(1), v(11)).commit();
        assert!(oracle_check_si(&b.build()));
    }

    #[test]
    fn long_fork_rejected() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(10)).write(k(2), v(20)).commit();
        b.session();
        b.begin().write(k(1), v(11)).commit();
        b.session();
        b.begin().write(k(2), v(21)).commit();
        b.session();
        b.begin().read(k(1), v(11)).read(k(2), v(20)).commit();
        b.session();
        b.begin().read(k(1), v(10)).read(k(2), v(21)).commit();
        assert!(!oracle_check_si(&b.build()));
    }

    #[test]
    fn axiom_violations_rejected() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().read(k(1), v(7)).commit(); // nobody wrote 7
        assert!(!oracle_check_si(&b.build()));
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn guard_trips_on_blowup() {
        let mut b = HistoryBuilder::new();
        b.session();
        for i in 0..12u64 {
            b.begin().write(k(1), v(i + 1)).commit();
        }
        let _ = oracle_check_si_with_limit(&b.build(), 100);
    }
}
