//! Machine-readable (JSON) report emission for every pipeline mode.
//!
//! Each writer produces a single self-describing JSON object whose first
//! field is a `schema` tag with an explicit version:
//!
//! | schema             | producer                                   |
//! |--------------------|--------------------------------------------|
//! | `polysi.check.v1`  | batch check ([`check_report_json`])        |
//! | `polysi.stream.v1` | streaming check ([`stream_report_json`])   |
//! | `polysi.live.v1`   | live ingest run ([`live_report_json`])     |
//! | `polysi.stats.v1`  | history statistics ([`stats_json`])        |
//!
//! The schemas are **append-only**: new optional fields may be added
//! within a version; removing or re-typing a field bumps it. All
//! durations are integer microseconds with a `_us` suffix; absent
//! sub-reports (e.g. solver counters on an axiom rejection) are `null`,
//! never omitted. The output is strict JSON — it round-trips through
//! [`polysi_obs::json::parse`], which the CLI tests rely on.
//!
//! See the README "Observability" section for a worked example.

use crate::check::{CheckReport, Outcome, Violation};
use crate::engine::{IsolationLevel, ShardStats};
use crate::live::LiveReport;
use crate::solve::SolveStats;
use crate::stream::{CheckpointReport, StreamRejection, StreamVerdict};
use polysi_history::stats::HistoryStats;
use polysi_history::{AxiomViolation, ShardFallback};
use polysi_obs::json::JsonWriter;
use polysi_obs::MetricsSnapshot;
use polysi_polygraph::{Edge, PruneStats};
use polysi_solver::SolverStats;
use std::time::Duration;

fn us(d: Duration) -> u64 {
    d.as_micros() as u64
}

fn write_axiom_violations(w: &mut JsonWriter, violations: &[AxiomViolation]) {
    w.begin_array();
    for v in violations {
        w.begin_object();
        w.field_str("kind", v.kind());
        w.field_str("message", &v.to_string());
        w.end_object();
    }
    w.end_array();
}

fn write_cycle(w: &mut JsonWriter, cycle: &[Edge]) {
    w.begin_array();
    for e in cycle {
        w.begin_object();
        w.field_u64("from", e.from.0 as u64);
        w.field_u64("to", e.to.0 as u64);
        w.field_str("label", &e.label.to_string());
        w.end_object();
    }
    w.end_array();
}

fn write_prune_stats(w: &mut JsonWriter, p: &PruneStats) {
    w.begin_object();
    w.field_u64("iterations", p.iterations as u64);
    w.field_u64("constraints_before", p.constraints_before as u64);
    w.field_u64("constraints_after", p.constraints_after as u64);
    w.field_u64("unknown_deps_before", p.unknown_deps_before as u64);
    w.field_u64("unknown_deps_after", p.unknown_deps_after as u64);
    w.field_u64("graph_builds", p.graph_builds as u64);
    w.field_u64("closure_updates", p.closure_updates as u64);
    w.field_u64("incremental_edges", p.incremental_edges as u64);
    w.end_object();
}

fn write_solver_stats(w: &mut JsonWriter, s: &SolverStats) {
    w.begin_object();
    w.field_u64("decisions", s.decisions);
    w.field_u64("propagations", s.propagations);
    w.field_u64("conflicts", s.conflicts);
    w.field_u64("theory_conflicts", s.theory_conflicts);
    w.field_u64("learned_clauses", s.learned_clauses);
    w.field_u64("restarts", s.restarts);
    w.end_object();
}

fn write_solve_stats(w: &mut JsonWriter, s: &SolveStats) {
    w.begin_object();
    w.field_str("mode", s.mode.name());
    w.field_u64("threads", s.threads as u64);
    w.field_u64("units", s.units as u64);
    w.field_u64("split_selectors", s.split_selectors as u64);
    match s.winner {
        Some(i) => {
            w.field_u64("winner", i as u64);
        }
        None => {
            w.field_null("winner");
        }
    }
    w.field_u64("sat_units", s.sat_units as u64);
    w.field_u64("unsat_units", s.unsat_units as u64);
    w.field_u64("cancelled_units", s.cancelled_units as u64);
    w.end_object();
}

fn write_shard_stats(w: &mut JsonWriter, s: &ShardStats) {
    w.begin_object();
    w.field_u64("components", s.components as u64);
    w.field_u64("key_components", s.key_components as u64);
    w.field_u64("largest", s.largest as u64);
    match s.fallback {
        Some(ShardFallback::SingleComponent) => {
            w.field_str("fallback", "single_component");
        }
        Some(ShardFallback::CrossShardSessions) => {
            w.field_str("fallback", "cross_shard_sessions");
        }
        None => {
            w.field_null("fallback");
        }
    }
    w.end_object();
}

fn write_metrics(w: &mut JsonWriter, metrics: Option<&MetricsSnapshot>) {
    w.key("metrics");
    match metrics {
        Some(snap) => snap.write_json(w),
        None => {
            w.null();
        }
    }
}

/// Write the body of a `polysi.check.v1` report (everything after the
/// opening brace and schema tag is shared with the nested rejection
/// report of the stream schema).
fn write_check_body(w: &mut JsonWriter, report: &CheckReport, isolation: IsolationLevel) {
    w.field_str("isolation", isolation.name());
    w.field_str("verdict", report.outcome.kind());
    w.field_bool("accepted", report.accepted());
    match &report.outcome {
        Outcome::Si => {
            w.field_null("anomaly");
            w.key("axiom_violations");
            w.begin_array();
            w.end_array();
            w.field_null("cycle");
        }
        Outcome::AxiomViolations(violations) => {
            w.field_null("anomaly");
            w.key("axiom_violations");
            write_axiom_violations(w, violations);
            w.field_null("cycle");
        }
        Outcome::CyclicViolation(Violation { cycle, anomaly, .. }) => {
            w.field_str("anomaly", anomaly.name());
            w.key("axiom_violations");
            w.begin_array();
            w.end_array();
            w.key("cycle");
            write_cycle(w, cycle);
        }
    }
    w.key("timings");
    w.begin_object();
    w.field_u64("construct_us", us(report.timings.constructing));
    w.field_u64("prune_us", us(report.timings.pruning));
    w.field_u64("encode_us", us(report.timings.encoding));
    w.field_u64("solve_us", us(report.timings.solving));
    w.field_u64("total_us", us(report.timings.total()));
    w.end_object();
    w.key("prune");
    match &report.prune_stats {
        Some(p) => write_prune_stats(w, p),
        None => {
            w.null();
        }
    }
    w.key("encode");
    w.begin_object();
    w.field_u64("vars", report.encode_stats.vars as u64);
    w.field_u64("clauses", report.encode_stats.clauses as u64);
    w.field_u64("known_edges", report.encode_stats.known_edges as u64);
    w.field_u64("symbolic_edges", report.encode_stats.symbolic_edges as u64);
    w.end_object();
    w.key("solver");
    match &report.solver_stats {
        Some(s) => write_solver_stats(w, s),
        None => {
            w.null();
        }
    }
    w.key("solve");
    match &report.solve_stats {
        Some(s) => write_solve_stats(w, s),
        None => {
            w.null();
        }
    }
    w.key("shards");
    match &report.shard_stats {
        Some(s) => write_shard_stats(w, s),
        None => {
            w.null();
        }
    }
    w.field_str("reach_oracle", report.reach_oracle.name());
}

/// The batch check report as a `polysi.check.v1` JSON document.
///
/// `wall` is the end-to-end wall-clock of the run (load + check);
/// `metrics` embeds a registry snapshot when observability was on.
pub fn check_report_json(
    report: &CheckReport,
    isolation: IsolationLevel,
    wall: Duration,
    metrics: Option<&MetricsSnapshot>,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "polysi.check.v1");
    write_check_body(&mut w, report, isolation);
    w.field_u64("wall_us", us(wall));
    write_metrics(&mut w, metrics);
    w.end_object();
    w.finish()
}

fn write_stream_verdict(w: &mut JsonWriter, v: &StreamVerdict) {
    w.begin_object();
    w.field_str("kind", v.kind());
    match v {
        StreamVerdict::Accepted => {}
        StreamVerdict::AxiomViolations { violations, healable } => {
            w.field_bool("healable", *healable);
            w.key("violations");
            write_axiom_violations(w, violations);
        }
        StreamVerdict::Rejected { anomaly, first_violation_op } => {
            match anomaly {
                Some(a) => {
                    w.field_str("anomaly", a.name());
                }
                None => {
                    w.field_null("anomaly");
                }
            }
            w.field_u64("first_violation_op", *first_violation_op as u64);
        }
    }
    w.end_object();
}

fn write_checkpoint(w: &mut JsonWriter, cp: &CheckpointReport) {
    w.begin_object();
    w.field_u64("seq", cp.seq as u64);
    w.field_u64("txns", cp.txns as u64);
    w.field_u64("live_txns", cp.live_txns as u64);
    w.field_u64("compacted", cp.compacted as u64);
    w.field_u64("ops", cp.ops as u64);
    w.field_u64("components", cp.components as u64);
    w.field_u64("dirty", cp.dirty as u64);
    w.field_u64("rebuilt", cp.rebuilt as u64);
    w.field_u64("elapsed_us", us(cp.elapsed));
    w.key("verdict");
    write_stream_verdict(w, &cp.verdict);
    w.end_object();
}

fn write_rejection(w: &mut JsonWriter, rej: Option<&StreamRejection>, isolation: IsolationLevel) {
    w.key("rejection");
    match rej {
        Some(r) => {
            w.begin_object();
            w.field_u64("checkpoint", r.checkpoint as u64);
            w.field_u64("op_index", r.op_index as u64);
            w.field_u64("txn_count", r.txn_count as u64);
            w.key("report");
            w.begin_object();
            write_check_body(w, &r.report, isolation);
            w.end_object();
            w.end_object();
        }
        None => {
            w.null();
        }
    }
}

/// A streaming run as a `polysi.stream.v1` JSON document: the checkpoint
/// trail, the final verdict, and (on terminal rejection) the canonical
/// batch report on the rejecting prefix.
pub fn stream_report_json(
    checkpoints: &[CheckpointReport],
    rejection: Option<&StreamRejection>,
    isolation: IsolationLevel,
    wall: Duration,
    metrics: Option<&MetricsSnapshot>,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "polysi.stream.v1");
    w.field_str("isolation", isolation.name());
    w.key("checkpoints");
    w.begin_array();
    for cp in checkpoints {
        write_checkpoint(&mut w, cp);
    }
    w.end_array();
    w.key("final");
    match checkpoints.last() {
        Some(cp) => write_stream_verdict(&mut w, &cp.verdict),
        None => {
            w.null();
        }
    }
    write_rejection(&mut w, rejection, isolation);
    w.field_u64("wall_us", us(wall));
    write_metrics(&mut w, metrics);
    w.end_object();
    w.finish()
}

/// A live ingest run as a `polysi.live.v1` JSON document: the stream
/// schema's checkpoint trail plus degradation flags, ingest counters, and
/// the typed fault log.
pub fn live_report_json(
    live: &LiveReport,
    rejection: Option<&StreamRejection>,
    isolation: IsolationLevel,
    wall: Duration,
    metrics: Option<&MetricsSnapshot>,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "polysi.live.v1");
    w.field_str("isolation", isolation.name());
    w.key("checkpoints");
    w.begin_array();
    for cp in &live.checkpoints {
        w.begin_object();
        w.field_bool("degraded", cp.degraded);
        w.key("stalled_sessions");
        w.begin_array();
        for sid in &cp.stalled {
            w.u64(sid.0 as u64);
        }
        w.end_array();
        w.key("checkpoint");
        write_checkpoint(&mut w, &cp.report);
        w.end_object();
    }
    w.end_array();
    w.key("final");
    match live.checkpoints.last() {
        Some(cp) => write_stream_verdict(&mut w, &cp.report.verdict),
        None => {
            w.null();
        }
    }
    w.key("ingest");
    w.begin_object();
    w.field_u64("delivered", live.stats.delivered as u64);
    w.field_u64("ingested", live.stats.ingested as u64);
    w.field_u64("duplicates", live.stats.duplicates as u64);
    w.field_u64("healed", live.stats.healed as u64);
    w.field_u64("sealed", live.stats.sealed as u64);
    w.end_object();
    w.key("faults");
    w.begin_array();
    for (sid, fault) in &live.faults {
        w.begin_object();
        w.field_u64("session", sid.0 as u64);
        w.field_str("kind", fault.kind());
        w.field_str("message", &fault.to_string());
        w.end_object();
    }
    w.end_array();
    w.key("abandoned_sessions");
    w.begin_array();
    for sid in &live.abandoned {
        w.u64(sid.0 as u64);
    }
    w.end_array();
    write_rejection(&mut w, rejection, isolation);
    w.field_u64("wall_us", us(wall));
    write_metrics(&mut w, metrics);
    w.end_object();
    w.finish()
}

/// History statistics as a `polysi.stats.v1` JSON document.
pub fn stats_json(stats: &HistoryStats) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "polysi.stats.v1");
    w.field_u64("sessions", stats.sessions as u64);
    w.field_u64("txns", stats.txns as u64);
    w.field_u64("committed", stats.committed as u64);
    w.field_u64("ops", stats.ops as u64);
    w.field_u64("reads", stats.reads as u64);
    w.field_u64("writes", stats.writes as u64);
    w.field_u64("keys", stats.keys as u64);
    w.field_u64("wr_edges", stats.wr_edges as u64);
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CheckEngine, EngineOptions};
    use polysi_history::HistoryBuilder;
    use polysi_obs::json::{parse, Value};
    use polysi_obs::Obs;

    fn tiny_history() -> polysi_history::History {
        let mut b = HistoryBuilder::new();
        b.session();
        use polysi_history::{Key, Value};
        b.begin().write(Key(0), Value(1)).read(Key(0), Value(1)).commit();
        b.build()
    }

    #[test]
    fn check_report_round_trips() {
        let h = tiny_history();
        let engine =
            CheckEngine::new(IsolationLevel::Si, EngineOptions::default()).with_obs(Obs::enabled());
        let report = engine.check(&h);
        let json = check_report_json(
            &report,
            IsolationLevel::Si,
            Duration::from_millis(1),
            Some(&engine.obs().metrics.snapshot()),
        );
        let v = parse(&json).expect("report must be valid JSON");
        assert_eq!(v.get("schema").and_then(Value::as_str), Some("polysi.check.v1"));
        assert_eq!(v.get("verdict").and_then(Value::as_str), Some("ok"));
        assert_eq!(v.get("accepted").and_then(Value::as_bool), Some(true));
        assert!(v.get("timings").and_then(|t| t.get("total_us")).is_some());
        assert!(v.get("metrics").and_then(|m| m.get("counters")).is_some());
    }

    #[test]
    fn stats_round_trips() {
        let h = tiny_history();
        let json = stats_json(&HistoryStats::of(&h));
        let v = parse(&json).expect("stats must be valid JSON");
        assert_eq!(v.get("schema").and_then(Value::as_str), Some("polysi.stats.v1"));
        assert_eq!(v.get("txns").and_then(Value::as_u64), Some(1));
    }
}
