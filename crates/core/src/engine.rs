//! The staged `CheckEngine`: Algorithm 1/2 of the paper factored into
//! explicit, reusable stages, parameterized by isolation level and sharded
//! by key connectivity.
//!
//! # Stages
//!
//! Every check runs the same five [`Stage`]s, each mapping back to the
//! paper's pseudocode:
//!
//! | Stage | Paper | What happens |
//! |---|---|---|
//! | [`Stage::Axioms`] | Algorithm 1, lines 2–4 (`CheckNonCyclicAxioms`) | `Int`, aborted/intermediate reads, UniqueValue via [`Facts::analyze`]; on failure the graph stages are skipped |
//! | [`Stage::Construct`] | Algorithm 2 (`CreateKnownGraph` + `GenerateConstraints`) | known `SO ∪ WR` (+ init-read `RW`, + RMW-inferred `WW` under SER) edges and per-key writer-pair constraints |
//! | [`Stage::Prune`] | Algorithm 1, lines 10–32 (`PruneConstraints`) | worklist-driven fixpoint resolving constraints whose one side closes a known cycle; the reachability oracle updates incrementally across passes — closure propagation batched per apply phase — and the per-pass sweep can fan out over [`PruneThreads`] scoped threads |
//! | [`Stage::Encode`] | Algorithm 1, lines 5–7 (encoding, Section 4.4) | one selector variable per surviving constraint guarding graph edges in the SAT-modulo-acyclicity solver |
//! | [`Stage::Solve`] | Algorithm 1, lines 8–9 (solving + counterexample) | CDCL search, parallelized over [`SolveThreads`] scoped workers: deterministic cube-and-conquer over top-degree selectors when enough constraints survive pruning, a seeded portfolio otherwise ([`crate::solve`]); on UNSAT a violating cycle is extracted from the polygraph, classified, and interpreted — byte-identical for any worker count |
//!
//! # Isolation levels
//!
//! [`IsolationLevel::Si`] runs the paper's pipeline on the layered
//! `(SO ∪ WR ∪ WW);RW?` graph. [`IsolationLevel::Ser`] reuses the same
//! construction, pruning, encoding, and solving machinery under
//! [`Semantics::Ser`]: plain acyclicity over `SO ∪ WR ∪ WW ∪ RW` plus
//! Cobra's read-modify-write version-order inference — the logic of the
//! `cobra` baseline promoted into the main API, with cycle classification
//! and interpretation support.
//!
//! # Sharding
//!
//! With [`Sharding::Auto`] the engine partitions the history into
//! key-connectivity components ([`ShardPlan`]): transaction sets sharing
//! no keys and no session edges. Each component is constructed, pruned,
//! encoded, and solved independently on scoped threads (axioms always run
//! once, globally); stage timings and counters are merged into the single
//! [`CheckReport`]. When key components are bridged by sessions the `SO`
//! edges between them are cross-shard constraints and the engine falls
//! back to whole-history checking
//! ([`ShardFallback::CrossShardSessions`]).

use crate::anomaly::Anomaly;
use crate::check::{CheckOptions, CheckReport, EncodeStats, Outcome, StageTimings, Violation};
use crate::interpret::interpret;
use crate::solve::{merge_solver_stats, run_solve, SolvePlan, SolveStats};
pub use crate::solve::{SolveMode, SolveThreads};
use polysi_history::{Facts, History, ShardComponent, ShardFallback, ShardPlan, TxnId};
use polysi_obs::{kv, Obs};
use polysi_polygraph::{
    ConstraintMode, Edge, KnownGraph, KnownGraphResult, Label, OracleKind, Polygraph, PruneOptions,
    PruneResult, PruneStats, Semantics,
};
use polysi_solver::{Lit, Solver, SolverStats};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The isolation level a history is checked against (the *policy*; the
/// graph-level *mechanism* is [`Semantics`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IsolationLevel {
    /// (Strong session) snapshot isolation — the paper's subject.
    #[default]
    Si,
    /// Serializability, Cobra-style, on the same polygraph/solver
    /// machinery.
    Ser,
}

impl IsolationLevel {
    /// Short stable name (`"si"` / `"ser"`), as accepted by the CLI.
    pub fn name(self) -> &'static str {
        match self {
            IsolationLevel::Si => "si",
            IsolationLevel::Ser => "ser",
        }
    }

    /// Human-readable name for verdict messages.
    pub fn long_name(self) -> &'static str {
        match self {
            IsolationLevel::Si => "snapshot isolation",
            IsolationLevel::Ser => "serializability",
        }
    }

    /// The edge-composition semantics implementing this level.
    pub fn semantics(self) -> Semantics {
        match self {
            IsolationLevel::Si => Semantics::Si,
            IsolationLevel::Ser => Semantics::Ser,
        }
    }
}

/// Whether the engine may partition the history by key connectivity.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Sharding {
    /// Always check the whole history as one unit.
    Off,
    /// Shard when the history splits into two or more independent
    /// components; fall back to whole-history checking otherwise.
    #[default]
    Auto,
}

/// Worker threads for the intra-component constraint sweep of the Prune
/// stage. Any setting produces byte-identical verdicts, resolved-edge
/// sets, and counterexample cycles — the sweep is read-only against the
/// shared reachability oracle and resolutions are applied in constraint
/// order — so this is purely a performance knob (CLI `--prune-threads`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PruneThreads {
    /// Use the machine's available parallelism, divided across concurrent
    /// shard pipelines when the history is sharded.
    #[default]
    Auto,
    /// Exactly `n` sweep threads per pruning unit (1 = sequential).
    Fixed(usize),
}

impl PruneThreads {
    /// Resolve to a concrete thread count for one of `units` concurrently
    /// pruning pipeline units. `Fixed` is capped at a small multiple of
    /// the machine's parallelism — an absurd `--prune-threads` value must
    /// degrade to oversubscription, not exhaust the process thread limit.
    pub(crate) fn resolve(self, units: usize) -> usize {
        let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        match self {
            PruneThreads::Fixed(n) => n.clamp(1, cores.saturating_mul(4).max(64)),
            PruneThreads::Auto => (cores / units.max(1)).max(1),
        }
    }
}

/// Worker threads for the streaming checker's dirty-component sweep at a
/// checkpoint (CLI `--checkpoint-threads`). Each dirty component's
/// delta-extend (or rebuild) is independent of the others, so the sweep
/// fans out over scoped threads exactly like the sharded batch engine;
/// checkpoint reports are byte-identical for any setting — the verdict,
/// violation list, and witness are canonical functions of the session-major
/// snapshot, and the per-checkpoint stats are order-independent counts.
/// Ignored by batch checks.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CheckpointThreads {
    /// Use the machine's available parallelism, capped at the number of
    /// dirty components.
    #[default]
    Auto,
    /// Exactly `n` workers (1 = the sequential sweep).
    Fixed(usize),
}

impl CheckpointThreads {
    /// Resolve to a concrete worker count for `dirty` dirty components.
    pub(crate) fn resolve(self, dirty: usize) -> usize {
        let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        match self {
            CheckpointThreads::Fixed(n) => n.clamp(1, cores.saturating_mul(4).max(64)),
            CheckpointThreads::Auto => cores,
        }
        .min(dirty.max(1))
    }
}

/// Watermark compaction of the streaming checker's settled prefix
/// (CLI `--compact`). Batch checks ignore it; with streaming, any setting
/// yields the same checkpoint verdicts, violation lists, and witnesses as
/// `Off` for histories that respect the watermark contract (no reads below
/// the fence) — property-tested by `crates/polysi/tests/compaction.rs`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CompactMode {
    /// Compact every settled component at every accepted checkpoint.
    On,
    /// Never compact; memory grows with the stream (the PR-5 behavior).
    Off,
    /// Compact when a component's settled prefix is large enough to be
    /// worth the remap (the default). Since compaction engages only for
    /// components whose sessions were all sealed via `seal_session`,
    /// streams that never seal are unaffected.
    #[default]
    Auto,
}

impl CompactMode {
    /// Short stable name, as accepted by the CLI.
    pub fn name(self) -> &'static str {
        match self {
            CompactMode::On => "on",
            CompactMode::Off => "off",
            CompactMode::Auto => "auto",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<CompactMode> {
        match s {
            "on" => Some(CompactMode::On),
            "off" => Some(CompactMode::Off),
            "auto" => Some(CompactMode::Auto),
            _ => None,
        }
    }
}

/// One stage of the pipeline (see the module docs for the mapping back to
/// Algorithm 1/2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stage {
    /// Non-cyclic axioms (Algorithm 1, lines 2–4).
    Axioms,
    /// Polygraph construction (Algorithm 2).
    Construct,
    /// Constraint pruning (Algorithm 1, lines 10–32).
    Prune,
    /// SAT-modulo-acyclicity encoding (Section 4.4).
    Encode,
    /// Solving and counterexample extraction.
    Solve,
}

impl Stage {
    /// Stage name as printed in traces and figures.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Axioms => "axioms",
            Stage::Construct => "construct",
            Stage::Prune => "prune",
            Stage::Encode => "encode",
            Stage::Solve => "solve",
        }
    }

    /// All stages, in pipeline order.
    pub const ALL: [Stage; 5] =
        [Stage::Axioms, Stage::Construct, Stage::Prune, Stage::Encode, Stage::Solve];
}

/// Engine knobs (everything but the isolation level, which is a
/// first-class argument of [`check`] / [`CheckEngine::new`]).
#[derive(Clone, Copy, Debug)]
pub struct EngineOptions {
    /// Key-connectivity sharding.
    pub sharding: Sharding,
    /// Constraint representation (generalized vs. plain).
    pub mode: ConstraintMode,
    /// Run constraint pruning before encoding.
    pub pruning: bool,
    /// Run the interpretation algorithm on cyclic violations.
    pub interpret: bool,
    /// Seed solver decision phases along a topological order of the known
    /// graph.
    pub phase_seeding: bool,
    /// Intra-component parallelism of the Prune stage's constraint sweep.
    pub prune_threads: PruneThreads,
    /// Worker parallelism of the Solve stage (cube-and-conquer or
    /// portfolio over cloned solver state; verdict-identical for any
    /// setting).
    pub solve_threads: SolveThreads,
    /// Solve strategy; [`SolveMode::Auto`] picks per instance. Exposed
    /// mainly for the `solve` bench's mode ablation.
    pub solve_mode: SolveMode,
    /// Reachability-oracle representation for the known graph
    /// ([`OracleKind`]): dense closure rows, per-session chain rows, or
    /// `Auto` (per component, chains when the session count beats the
    /// dense bit-row budget). Verdict- and witness-identical for any
    /// setting.
    pub reach_oracle: OracleKind,
    /// Watermark compaction of the streaming checker's settled prefix
    /// ([`CompactMode`]); ignored by batch checks.
    pub compact: CompactMode,
    /// Worker parallelism of the streaming checker's dirty-component
    /// sweep at a checkpoint ([`CheckpointThreads`]); ignored by batch
    /// checks.
    pub checkpoint_threads: CheckpointThreads,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            sharding: Sharding::Auto,
            mode: ConstraintMode::Generalized,
            pruning: true,
            interpret: true,
            phase_seeding: true,
            prune_threads: PruneThreads::Auto,
            solve_threads: SolveThreads::Auto,
            solve_mode: SolveMode::Auto,
            reach_oracle: OracleKind::Auto,
            compact: CompactMode::Auto,
            checkpoint_threads: CheckpointThreads::Auto,
        }
    }
}

impl From<&CheckOptions> for EngineOptions {
    /// The compatibility mapping used by `check_si`: same knobs, sharding
    /// off and a sequential prune sweep. Verdict-compatible with earlier
    /// releases; the witness cycle on a rejected history may differ (the
    /// incremental oracle surfaces violations at insert time rather than
    /// at the next pass's rebuild).
    fn from(opts: &CheckOptions) -> Self {
        EngineOptions {
            sharding: Sharding::Off,
            mode: opts.mode,
            pruning: opts.pruning,
            interpret: opts.interpret,
            phase_seeding: opts.phase_seeding,
            prune_threads: PruneThreads::Fixed(1),
            solve_threads: SolveThreads::Fixed(1),
            solve_mode: SolveMode::Auto,
            reach_oracle: opts.reach_oracle,
            compact: CompactMode::Auto,
            checkpoint_threads: CheckpointThreads::Fixed(1),
        }
    }
}

/// How the sharding stage partitioned (or declined to partition) the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardStats {
    /// Components checked independently (1 = whole-history).
    pub components: usize,
    /// Components under key connectivity alone; larger than `components`
    /// when session edges forced a merge.
    pub key_components: usize,
    /// Transactions in the largest component.
    pub largest: usize,
    /// Why the engine fell back to whole-history checking, if it did.
    pub fallback: Option<ShardFallback>,
}

/// Check `h` against `isolation` with the staged engine.
///
/// Sound and complete for both levels (Theorems 18/19 for SI; the Cobra
/// reduction for SER), assuming determinate transactions.
pub fn check(h: &History, isolation: IsolationLevel, opts: &EngineOptions) -> CheckReport {
    CheckEngine::new(isolation, *opts).check(h)
}

/// The staged, shardable checking engine. Construct once, reuse across
/// histories.
pub struct CheckEngine {
    isolation: IsolationLevel,
    opts: EngineOptions,
    obs: Obs,
}

/// What one pipeline unit (the whole history, or one shard) produced.
/// Cycles are in *global* transaction ids.
struct UnitReport {
    cycle: Option<Vec<Edge>>,
    timings: StageTimings,
    prune_stats: Option<PruneStats>,
    encode_stats: EncodeStats,
    solver_stats: Option<SolverStats>,
    solve_stats: Option<SolveStats>,
}

impl CheckEngine {
    /// An engine for `isolation` with the given knobs.
    pub fn new(isolation: IsolationLevel, opts: EngineOptions) -> Self {
        CheckEngine { isolation, opts, obs: Obs::default() }
    }

    /// Attach observability handles (span tracer + metrics registry). The
    /// default engine carries a disabled tracer and a private registry, so
    /// this is opt-in for the CLI / tests / benches that scrape them.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The engine's observability handles.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The engine's isolation level.
    pub fn isolation(&self) -> IsolationLevel {
        self.isolation
    }

    /// Run the staged pipeline on a history.
    pub fn check(&self, h: &History) -> CheckReport {
        let mut span = self
            .obs
            .tracer
            .span_kv("check", kv! { isolation: self.isolation.name(), txns: h.len() });
        let report = self.check_inner(h);
        span.attr("verdict", report.outcome.kind());
        self.record_metrics(h, &report);
        report
    }

    fn check_inner(&self, h: &History) -> CheckReport {
        let mut timings = StageTimings::default();
        let t0 = Instant::now();

        // Stage::Axioms — run once, globally: axiom witnesses (e.g. an
        // aborted write read in another session) may span what would
        // otherwise be distinct shards. Its time is folded into
        // `constructing`, as in the original pipeline.
        let facts = {
            let _span = self.obs.tracer.span("axioms");
            Facts::analyze(h)
        };
        let axioms_time = t0.elapsed();
        if !facts.axioms_ok() {
            timings.constructing = axioms_time;
            return CheckReport {
                outcome: Outcome::AxiomViolations(facts.violations),
                timings,
                prune_stats: None,
                encode_stats: EncodeStats::default(),
                solver_stats: None,
                solve_stats: None,
                shard_stats: None,
                reach_oracle: self.opts.reach_oracle,
            };
        }

        let (mut unit, shard_stats) = match self.opts.sharding {
            Sharding::Off => (
                self.check_unit(h, &facts, None, self.prune_options(&facts, 1), self.solve_plan(1)),
                None,
            ),
            Sharding::Auto => {
                let plan = ShardPlan::analyze(h);
                let stats = ShardStats {
                    components: plan.components.len().max(1),
                    key_components: plan.key_components.max(1),
                    largest: plan.largest().max(if plan.is_shardable() { 0 } else { h.len() }),
                    fallback: plan.fallback(),
                };
                let unit = if plan.is_shardable() {
                    self.check_shards(h, &facts, &plan)
                } else {
                    self.check_unit(
                        h,
                        &facts,
                        None,
                        self.prune_options(&facts, 1),
                        self.solve_plan(1),
                    )
                };
                (unit, Some(stats))
            }
        };

        unit.timings.constructing += axioms_time;

        let outcome = match unit.cycle {
            None => Outcome::Si,
            Some(cycle) => {
                let scenario = self.opts.interpret.then(|| interpret(h, &facts, &cycle));
                let anomaly = Anomaly::classify(&cycle);
                Outcome::CyclicViolation(Violation { cycle, anomaly, scenario })
            }
        };
        CheckReport {
            outcome,
            timings: unit.timings,
            prune_stats: unit.prune_stats,
            encode_stats: unit.encode_stats,
            solver_stats: unit.solver_stats,
            solve_stats: unit.solve_stats,
            shard_stats,
            reach_oracle: self.opts.reach_oracle,
        }
    }

    /// Check every component on scoped worker threads and merge the
    /// results. The reported violation (if any) is the one from the
    /// lowest-numbered violating component, so sharded runs stay
    /// deterministic regardless of scheduling.
    fn check_shards(&self, h: &History, facts: &Facts, plan: &ShardPlan) -> UnitReport {
        let ncomp = plan.components.len();
        let workers =
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).clamp(1, ncomp);
        // Shard pipelines run `workers`-wide, so each unit's intra-prune
        // sweep and solve-stage worker pool get a proportional share of
        // the machine.
        let prune_opts = self.prune_options(facts, workers);
        let solve_plan = self.solve_plan(workers);
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, UnitReport)>> = Mutex::new(Vec::with_capacity(ncomp));
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= ncomp {
                        break;
                    }
                    let _span = self
                        .obs
                        .tracer
                        .span_kv("shard", kv! { component: i, txns: plan.components[i].len() });
                    let unit = self.check_unit(
                        h,
                        facts,
                        Some(&plan.components[i]),
                        prune_opts,
                        solve_plan,
                    );
                    results.lock().expect("shard worker panicked").push((i, unit));
                });
            }
        });
        let mut units = results.into_inner().expect("shard worker panicked");
        units.sort_by_key(|&(i, _)| i);

        let mut merged = UnitReport {
            cycle: None,
            timings: StageTimings::default(),
            prune_stats: None,
            encode_stats: EncodeStats::default(),
            solver_stats: None,
            solve_stats: None,
        };
        for (_, u) in units {
            if merged.cycle.is_none() {
                merged.cycle = u.cycle;
            }
            merged.timings.constructing += u.timings.constructing;
            merged.timings.pruning += u.timings.pruning;
            merged.timings.encoding += u.timings.encoding;
            merged.timings.solving += u.timings.solving;
            merged.prune_stats = match (merged.prune_stats, u.prune_stats) {
                (Some(a), Some(b)) => Some(a.merge(b)),
                (a, b) => a.or(b),
            };
            merged.encode_stats.vars += u.encode_stats.vars;
            merged.encode_stats.clauses += u.encode_stats.clauses;
            merged.encode_stats.known_edges += u.encode_stats.known_edges;
            merged.encode_stats.symbolic_edges += u.encode_stats.symbolic_edges;
            merged.solver_stats = match (merged.solver_stats, u.solver_stats) {
                (Some(a), Some(b)) => Some(merge_solver_stats(a, b)),
                (a, b) => a.or(b),
            };
            merged.solve_stats = match (merged.solve_stats, u.solve_stats) {
                (Some(a), Some(b)) => Some(a.merge(b)),
                (a, b) => a.or(b),
            };
        }
        merged
    }

    /// Prune options for one pipeline unit, `units` of which prune
    /// concurrently.
    fn prune_options(&self, facts: &Facts, units: usize) -> PruneOptions {
        prune_options_for(&self.opts, facts, units)
    }

    /// Solve plan for one pipeline unit, `units` of which solve
    /// concurrently.
    fn solve_plan(&self, units: usize) -> SolvePlan {
        solve_plan_for(&self.opts, units)
    }

    /// Stages Construct → Prune → Encode → Solve for one unit: the whole
    /// history (`comp == None`) or one key-connectivity component.
    fn check_unit(
        &self,
        h: &History,
        facts: &Facts,
        comp: Option<&ShardComponent>,
        prune_opts: PruneOptions,
        solve_plan: SolvePlan,
    ) -> UnitReport {
        let semantics = self.isolation.semantics();
        let mut timings = StageTimings::default();
        let translate = |mut cycle: Vec<Edge>| {
            if let Some(c) = comp {
                for e in &mut cycle {
                    e.from = c.global(e.from);
                    e.to = c.global(e.to);
                }
            }
            cycle
        };

        // Stage::Construct.
        let t = Instant::now();
        let mut g = {
            let _span = self.obs.tracer.span("construct");
            match comp {
                None => Polygraph::from_history_with(h, facts, self.opts.mode, semantics),
                Some(c) => Polygraph::from_component(h, facts, self.opts.mode, semantics, c),
            }
        };
        timings.constructing = t.elapsed();

        // Stage::Prune.
        let mut prune_stats = None;
        let mut oracle = None;
        if self.opts.pruning {
            let t = Instant::now();
            let (pr, orc) = {
                let mut span =
                    self.obs.tracer.span_kv("prune", kv! { constraints: g.constraints.len() });
                let r = g.prune_with_oracle_traced(&prune_opts, &self.obs.tracer);
                span.attr("remaining", g.constraints.len());
                r
            };
            timings.pruning = t.elapsed();
            match pr {
                PruneResult::Pruned(stats) => {
                    prune_stats = Some(stats);
                    oracle = orc;
                }
                PruneResult::Violation(cycle) => {
                    return UnitReport {
                        cycle: Some(translate(cycle)),
                        timings,
                        prune_stats: None,
                        encode_stats: EncodeStats::default(),
                        solver_stats: None,
                        solve_stats: None,
                    };
                }
            }
        }

        // Stage::Encode. Phase seeding reuses the oracle pruning just
        // maintained (it reflects every resolved edge) instead of paying a
        // second from-scratch closure build.
        let t = Instant::now();
        let (mut solver, encode_stats) = {
            let _span = self.obs.tracer.span("encode");
            encode(&g, self.opts.phase_seeding, oracle.as_deref(), self.opts.reach_oracle)
        };
        solver.set_tracer(self.obs.tracer.clone());
        timings.encoding = t.elapsed();

        // Stage::Solve. Cube ranking wants the history's transaction
        // degrees in this unit's (possibly shard-local) id space.
        let t = Instant::now();
        let _solve_span = self.obs.tracer.span_kv("solve", kv! { vars: encode_stats.vars });
        let degrees: Vec<u32> = match comp {
            None => (0..h.len() as u32).map(|i| facts.txn_degree(TxnId(i)) as u32).collect(),
            Some(c) => c.txns.iter().map(|&t| facts.txn_degree(t) as u32).collect(),
        };
        let (sat, solve_stats) = run_solve(&g, solver, Some(&degrees), &solve_plan);
        let solver_stats = Some(solve_stats.solver);
        let cycle = (!sat).then(|| translate(extract_cycle(&g)));
        timings.solving = t.elapsed();
        UnitReport {
            cycle,
            timings,
            prune_stats,
            encode_stats,
            solver_stats,
            solve_stats: Some(solve_stats),
        }
    }

    /// Fold a finished report into the metrics registry. Plain counters
    /// carry only scheduling-independent totals (the digest contract);
    /// solver runtime counters go under `runtime.*` and stage latencies
    /// into histograms.
    fn record_metrics(&self, h: &History, report: &CheckReport) {
        let m = &self.obs.metrics;
        m.counter("check.runs").inc();
        m.counter("check.txns").add(h.len() as u64);
        match &report.outcome {
            Outcome::Si => {}
            Outcome::AxiomViolations(v) => m.counter("check.axiom_violations").add(v.len() as u64),
            Outcome::CyclicViolation(_) => m.counter("check.cyclic_violations").inc(),
        }
        if let Some(p) = &report.prune_stats {
            m.counter("prune.constraints_before").add(p.constraints_before as u64);
            m.counter("prune.constraints_after").add(p.constraints_after as u64);
            m.counter("prune.closure_updates").add(p.closure_updates as u64);
            m.counter("prune.incremental_edges").add(p.incremental_edges as u64);
            m.counter("prune.graph_builds").add(p.graph_builds as u64);
        }
        let e = &report.encode_stats;
        m.counter("encode.vars").add(e.vars as u64);
        m.counter("encode.clauses").add(e.clauses as u64);
        m.counter("encode.known_edges").add(e.known_edges as u64);
        m.counter("encode.symbolic_edges").add(e.symbolic_edges as u64);
        if let Some(s) = &report.solver_stats {
            m.counter("runtime.solver.decisions").add(s.decisions);
            m.counter("runtime.solver.propagations").add(s.propagations);
            m.counter("runtime.solver.conflicts").add(s.conflicts);
            m.counter("runtime.solver.theory_conflicts").add(s.theory_conflicts);
            m.counter("runtime.solver.learned_clauses").add(s.learned_clauses);
            m.counter("runtime.solver.restarts").add(s.restarts);
        }
        let t = &report.timings;
        m.histogram_us("check.total_us").observe_duration(t.total());
        m.histogram_us("check.construct_us").observe_duration(t.constructing);
        m.histogram_us("check.prune_us").observe_duration(t.pruning);
        m.histogram_us("check.encode_us").observe_duration(t.encoding);
        m.histogram_us("check.solve_us").observe_duration(t.solving);
    }
}

/// Prune options for one pipeline unit, `units` of which prune
/// concurrently: the thread knob resolves against the machine, and the
/// sweep chunk size derives from the history's txn-degree hints —
/// high-degree workloads carry more edges per constraint, so chunks
/// shrink to keep parallel sweep stragglers short. Shared between the
/// batch engine and the streaming checker so the two pipelines always
/// run the same configuration.
pub(crate) fn prune_options_for(opts: &EngineOptions, facts: &Facts, units: usize) -> PruneOptions {
    let threads = opts.prune_threads.resolve(units);
    let chunk_size = (512.0 / (1.0 + facts.mean_txn_degree())).round() as usize;
    PruneOptions {
        threads,
        chunk_size: chunk_size.clamp(16, 512),
        oracle: opts.reach_oracle,
        ..Default::default()
    }
}

/// Solve plan for one pipeline unit, `units` of which solve concurrently
/// (shared with the streaming checker, like [`prune_options_for`]).
pub(crate) fn solve_plan_for(opts: &EngineOptions, units: usize) -> SolvePlan {
    SolvePlan { mode: opts.solve_mode, threads: opts.solve_threads.resolve(units) }
}

/// Encode a polygraph into the SAT-modulo-acyclicity solver. Under SI the
/// theory graph is the layered one (2n nodes, `Dep` edges fan out to
/// boundary + mid images); under SER it is the plain n-node graph with
/// every edge direct. Selector phases are seeded from a topological order
/// of the known graph so the solver's first full assignment is already
/// near-acyclic; `oracle` (the reachability oracle pruning handed back,
/// when it ran) supplies that order without a rebuild, and `kind` picks
/// the representation of the fallback build when pruning did not run.
pub(crate) fn encode(
    g: &Polygraph,
    phase_seeding: bool,
    oracle: Option<&KnownGraph>,
    kind: OracleKind,
) -> (Solver, EncodeStats) {
    let n = g.n;
    let semantics = g.semantics;
    let topo: Option<Vec<u32>> = if phase_seeding {
        match oracle {
            Some(kg) => Some(kg.topo_positions()),
            None => match g.known_graph_with(kind) {
                KnownGraphResult::Acyclic(kg) => Some(kg.topo_positions()),
                KnownGraphResult::Cyclic(_) => None, // solver will report Unsat
            },
        }
    } else {
        None
    };
    let nodes = match semantics {
        Semantics::Si => 2 * n,
        Semantics::Ser => n,
    };
    let mut solver = Solver::with_graph(nodes);
    let mut encode_stats = EncodeStats::default();
    for e in &g.known {
        add_known(&mut solver, n, e, semantics);
        encode_stats.known_edges += edge_count(e, semantics);
    }
    for cons in &g.constraints {
        let var = solver.new_var();
        let s = Lit::pos(var);
        encode_stats.vars += 1;
        if let Some(topo) = &topo {
            solver.set_phase(var, phase_along_topo(topo, cons, semantics));
        }
        for e in &cons.either {
            add_symbolic(&mut solver, n, s, e, semantics);
            encode_stats.symbolic_edges += edge_count(e, semantics);
        }
        for e in &cons.or {
            add_symbolic(&mut solver, n, !s, e, semantics);
            encode_stats.symbolic_edges += edge_count(e, semantics);
        }
    }
    (solver, encode_stats)
}

/// On UNSAT, every resolution of the constraints is cyclic (Definition 15),
/// so resolving everything one way and extracting a cycle yields a genuine
/// counterexample. We try both uniform resolutions and keep the shorter
/// cycle. A pure function of the polygraph: the witness is byte-identical
/// whichever solve mode or worker count proved the UNSAT.
pub(crate) fn extract_cycle(g: &Polygraph) -> Vec<Edge> {
    let mut best: Option<Vec<Edge>> = None;
    for either in [true, false] {
        let mut edges = g.known.clone();
        for c in &g.constraints {
            let side = if either { &c.either } else { &c.or };
            edges.extend(side.iter().copied());
        }
        if let KnownGraphResult::Cyclic(cycle) = KnownGraph::build_with(g.n, &edges, g.semantics) {
            if best.as_ref().is_none_or(|b| cycle.len() < b.len()) {
                best = Some(cycle);
            }
        }
    }
    best.expect("UNSAT instance must be cyclic under a uniform resolution")
}

/// Prefer the constraint side whose edges agree with the known topological
/// order. Under SI only `WW` edges vote (the `RW` companions follow them);
/// under SER every edge is a plain edge and votes.
fn phase_along_topo(topo: &[u32], cons: &polysi_polygraph::Constraint, sem: Semantics) -> bool {
    let agreement = |side: &[Edge]| -> i64 {
        side.iter()
            .filter(|e| sem == Semantics::Ser || matches!(e.label, Label::Ww(_)))
            .map(|e| if topo[e.from.idx()] < topo[e.to.idx()] { 1i64 } else { -1 })
            .sum()
    };
    agreement(&cons.either) >= agreement(&cons.or)
}

/// Theory edges contributed by one typed edge.
#[inline]
fn edge_count(e: &Edge, sem: Semantics) -> usize {
    if sem == Semantics::Si && e.label.is_dep() {
        2
    } else {
        1
    }
}

/// Add a known edge's theory image. Under SI, the layered mapping (see
/// [`KnownGraph`]): `Dep i→k` becomes `B(i)→B(k)` and `B(i)→M(k)`;
/// `RW k→j` becomes `M(k)→B(j)`. Under SER, one direct edge.
fn add_known(solver: &mut Solver, n: usize, e: &Edge, sem: Semantics) {
    let (f, t) = (e.from.0, e.to.0);
    match sem {
        Semantics::Ser => solver.add_known_edge(f, t),
        Semantics::Si => {
            if e.label.is_dep() {
                solver.add_known_edge(f, t);
                solver.add_known_edge(f, n as u32 + t);
            } else {
                solver.add_known_edge(n as u32 + f, t);
            }
        }
    }
}

fn add_symbolic(solver: &mut Solver, n: usize, guard: Lit, e: &Edge, sem: Semantics) {
    let (f, t) = (e.from.0, e.to.0);
    match sem {
        Semantics::Ser => solver.add_symbolic_edge(guard, f, t),
        Semantics::Si => {
            if e.label.is_dep() {
                solver.add_symbolic_edge(guard, f, t);
                solver.add_symbolic_edge(guard, f, n as u32 + t);
            } else {
                solver.add_symbolic_edge(guard, n as u32 + f, t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysi_history::{HistoryBuilder, Key, Value};

    fn k(n: u64) -> Key {
        Key(n)
    }
    fn v(n: u64) -> Value {
        Value(n)
    }

    /// Three-way write skew: every transaction reads one key and writes the
    /// next. SI accepts (the cycle is all-RW); SER rejects.
    fn write_skew_chain() -> polysi_history::History {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).write(k(2), v(2)).write(k(3), v(3)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(2), v(22)).commit();
        b.session();
        b.begin().read(k(2), v(2)).write(k(3), v(33)).commit();
        b.session();
        b.begin().read(k(3), v(3)).write(k(1), v(11)).commit();
        b.build()
    }

    /// Two disjoint groups: group A is a clean serial chain, group B a lost
    /// update.
    fn two_components_one_bad() -> polysi_history::History {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(1), v(2)).commit();
        b.session();
        b.begin().write(k(10), v(100)).commit();
        b.session();
        b.begin().read(k(10), v(100)).write(k(10), v(101)).commit();
        b.session();
        b.begin().read(k(10), v(100)).write(k(10), v(102)).commit();
        b.build()
    }

    #[test]
    fn ser_rejects_what_si_accepts() {
        let h = write_skew_chain();
        let opts = EngineOptions::default();
        assert!(check(&h, IsolationLevel::Si, &opts).is_si());
        let ser = check(&h, IsolationLevel::Ser, &opts);
        assert!(!ser.is_si());
        match &ser.outcome {
            Outcome::CyclicViolation(viol) => {
                assert!(!viol.cycle.is_empty());
                assert!(viol.scenario.is_some(), "interpretation must run under SER too");
            }
            _ => panic!("SER violation must be cyclic"),
        }
    }

    #[test]
    fn sharded_violation_translates_to_global_ids() {
        let h = two_components_one_bad();
        let report = check(&h, IsolationLevel::Si, &EngineOptions::default());
        let stats = report.shard_stats.expect("auto sharding records stats");
        assert_eq!(stats.components, 2);
        assert_eq!(stats.fallback, None);
        match &report.outcome {
            Outcome::CyclicViolation(viol) => {
                assert_eq!(viol.anomaly, Anomaly::LostUpdate);
                // All cycle endpoints are the *global* ids of group B.
                for e in &viol.cycle {
                    assert!(e.from.0 >= 2 && e.to.0 >= 2, "cycle uses local ids: {:?}", viol.cycle);
                }
            }
            _ => panic!("the lost-update component must be rejected"),
        }
        // Off agrees.
        let off = EngineOptions { sharding: Sharding::Off, ..Default::default() };
        assert!(!check(&h, IsolationLevel::Si, &off).is_si());
    }

    #[test]
    fn sharded_and_whole_history_stats_both_flow() {
        let h = two_components_one_bad();
        let auto = check(&h, IsolationLevel::Ser, &EngineOptions::default());
        assert!(auto.shard_stats.is_some());
        assert!(!auto.is_si(), "a lost update is not serializable");
        let off = check(
            &h,
            IsolationLevel::Ser,
            &EngineOptions { sharding: Sharding::Off, ..Default::default() },
        );
        assert!(off.shard_stats.is_none());
        assert_eq!(auto.is_si(), off.is_si());
    }

    #[test]
    fn fallback_reported_for_bridging_sessions() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).commit();
        b.session();
        b.begin().write(k(10), v(100)).commit();
        b.session();
        b.begin().read(k(1), v(1)).commit();
        b.begin().read(k(10), v(100)).commit();
        let report = check(&b.build(), IsolationLevel::Si, &EngineOptions::default());
        assert!(report.is_si());
        let stats = report.shard_stats.unwrap();
        assert_eq!(stats.components, 1);
        assert_eq!(stats.key_components, 2);
        assert_eq!(stats.fallback, Some(ShardFallback::CrossShardSessions));
    }

    #[test]
    fn prune_threads_do_not_change_reports() {
        let histories = [write_skew_chain(), two_components_one_bad()];
        for h in &histories {
            for isolation in [IsolationLevel::Si, IsolationLevel::Ser] {
                let run = |threads: PruneThreads| {
                    let opts = EngineOptions { prune_threads: threads, ..Default::default() };
                    check(h, isolation, &opts)
                };
                let seq = run(PruneThreads::Fixed(1));
                for threads in [PruneThreads::Fixed(4), PruneThreads::Auto] {
                    let par = run(threads);
                    assert_eq!(seq.is_si(), par.is_si(), "{isolation:?} {threads:?}");
                    let cycles = |r: &crate::check::CheckReport| match &r.outcome {
                        Outcome::CyclicViolation(v) => format!("{:?}", v.cycle),
                        _ => String::new(),
                    };
                    assert_eq!(cycles(&seq), cycles(&par), "{isolation:?} {threads:?}");
                    assert_eq!(
                        seq.prune_stats.map(|s| (s.constraints_after, s.unknown_deps_after)),
                        par.prune_stats.map(|s| (s.constraints_after, s.unknown_deps_after)),
                    );
                }
            }
        }
    }

    #[test]
    fn solve_threads_and_modes_do_not_change_reports() {
        let histories = [write_skew_chain(), two_components_one_bad()];
        for h in &histories {
            for isolation in [IsolationLevel::Si, IsolationLevel::Ser] {
                let run = |threads: SolveThreads, mode: SolveMode| {
                    let opts = EngineOptions {
                        solve_threads: threads,
                        solve_mode: mode,
                        ..Default::default()
                    };
                    check(h, isolation, &opts)
                };
                let seq = run(SolveThreads::Fixed(1), SolveMode::Auto);
                for threads in [SolveThreads::Fixed(4), SolveThreads::Auto] {
                    for mode in [SolveMode::Auto, SolveMode::Cube, SolveMode::Portfolio] {
                        let par = run(threads, mode);
                        assert_eq!(seq.is_si(), par.is_si(), "{isolation:?} {threads:?} {mode:?}");
                        let cycles = |r: &crate::check::CheckReport| match &r.outcome {
                            Outcome::CyclicViolation(v) => format!("{:?}", v.cycle),
                            _ => String::new(),
                        };
                        assert_eq!(
                            cycles(&seq),
                            cycles(&par),
                            "{isolation:?} {threads:?} {mode:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn prune_threads_resolve() {
        assert_eq!(PruneThreads::Fixed(3).resolve(8), 3);
        assert_eq!(PruneThreads::Fixed(0).resolve(1), 1);
        let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        assert_eq!(
            PruneThreads::Fixed(usize::MAX).resolve(1),
            cores.saturating_mul(4).max(64),
            "absurd --prune-threads values must be capped, not spawned"
        );
        assert!(PruneThreads::Auto.resolve(1) >= 1);
        assert!(PruneThreads::Auto.resolve(usize::MAX) >= 1);
    }

    #[test]
    fn stage_names_cover_the_pipeline() {
        let names: Vec<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["axioms", "construct", "prune", "encode", "solve"]);
        assert_eq!(IsolationLevel::Ser.name(), "ser");
        assert_eq!(IsolationLevel::Si.long_name(), "snapshot isolation");
    }
}
