//! The streaming checker: online verdicts over an incrementally ingested
//! history, re-running the staged pipeline only on the components dirtied
//! since the last checkpoint.
//!
//! # Model
//!
//! A [`StreamingChecker`] wraps a [`HistoryStream`]: transactions are
//! pushed in session order (interleaved freely across sessions) and
//! [`StreamingChecker::checkpoint`] produces a verdict for the prefix
//! ingested so far. The verdict at every checkpoint **equals the batch
//! [`CheckEngine`] verdict on the same prefix** (the snapshot the stream
//! can materialize at any time) — property-tested across the conformance
//! corpus by `crates/polysi/tests/stream.rs`.
//!
//! Between checkpoints the checker maintains, per key-connectivity
//! component:
//!
//! * the component's [`Polygraph`] in *arrival-order* local ids — new
//!   transactions extend it in place (**delta construction**: new `SO`,
//!   `WR`, init-`RW` (and SER RMW-`WW`) edges from the stream's
//!   [`FactEvent`] log, new or regenerated writer-pair constraints for
//!   keys whose writer or reader sets grew);
//! * the prune stage's reachability oracle, grown with
//!   [`KnownGraph::grow`] and extended with
//!   [`KnownGraph::insert_edges_bulk`] — never rebuilt;
//! * the prune fixpoint resumes from the delta's touched set
//!   ([`Polygraph::prune_resume`]) instead of sweeping every constraint.
//!
//! The encode and solve stages re-run per dirty component (solver state
//! is not incremental); clean components keep their cached accept.
//!
//! # Monotonicity contract
//!
//! * **An accept is always revisable**: later transactions can only add
//!   edges and constraints, so any checkpoint's accept may flip to reject
//!   at a later checkpoint.
//! * **A cyclic rejection is stable**: known edges never disappear and
//!   constraint sides only grow, so a violating cycle (or an unsatisfiable
//!   component) stays violating in every extension. On the first rejecting
//!   checkpoint the checker canonicalizes the verdict by running the batch
//!   engine once on the current prefix — making that checkpoint's report
//!   byte-identical to batch — and the stream is terminally rejected: the
//!   stable witness is returned from then on (later batch runs on longer
//!   prefixes still reject, but may pick a different witness; the
//!   streaming one stays put).
//! * **Axiom violations are canonical but only *monotone* ones are
//!   stable**: a read of a value whose writer has not arrived yet fails
//!   the non-cyclic axioms exactly as batch analysis of the prefix would
//!   (reported via a batch `Facts::analyze` of the snapshot, so the list
//!   is identical), yet it *heals* if the writer arrives later. `Int`,
//!   duplicate-write, and wrote-init violations never heal and are
//!   terminal.
//!
//! # Scope
//!
//! Streaming requires the default engine configuration of the graph
//! stages: generalized constraints and pruning enabled (the prune oracle
//! *is* the incremental structure). Thread knobs and `SolveMode` apply
//! unchanged; interpretation runs inside the canonical batch report.

use crate::anomaly::Anomaly;
use crate::check::{CheckReport, Outcome};
use crate::engine::{encode, CheckEngine, CompactMode, EngineOptions, IsolationLevel};
use crate::solve::SolvePlan;
use polysi_history::{
    AxiomViolation, FactEvent, Facts, History, HistoryStream, IngestError, Key, Op, RootInfo,
    SessionId, ShardComponent, TxnId, TxnStatus, WrSource,
};
use polysi_obs::{kv, Obs};
use polysi_polygraph::{
    Constraint, ConstraintMode, Edge, KnownGraph, Label, Polygraph, PruneOptions, PruneResult,
    PruneStats,
};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The verdict of one checkpoint.
#[derive(Clone, Debug)]
pub enum StreamVerdict {
    /// Every component of the current prefix is accepted.
    Accepted,
    /// The prefix fails the non-cyclic axioms, exactly as the batch
    /// analysis of the snapshot would (same violations, same order).
    /// Revisable iff every violation is an unresolved read (see the
    /// module docs); `healable` says whether that is the case.
    AxiomViolations {
        /// The canonical violation list.
        violations: Vec<AxiomViolation>,
        /// Whether later transactions can still heal the prefix.
        healable: bool,
    },
    /// Terminal rejection: a component's polygraph is violating. The full
    /// canonical report is available via [`StreamingChecker::rejection`].
    Rejected {
        /// Anomaly classification of the canonical witness (`None` for
        /// axiom-level terminal rejections).
        anomaly: Option<Anomaly>,
        /// Operations ingested when the violation was detected.
        first_violation_op: usize,
    },
}

impl StreamVerdict {
    /// Whether the checkpoint accepted the prefix.
    pub fn accepted(&self) -> bool {
        matches!(self, StreamVerdict::Accepted)
    }

    /// Stable machine-readable kind, used by span attributes and the
    /// `--report json` schema: `accepted` / `axiom_violations` / `rejected`.
    pub fn kind(&self) -> &'static str {
        match self {
            StreamVerdict::Accepted => "accepted",
            StreamVerdict::AxiomViolations { .. } => "axiom_violations",
            StreamVerdict::Rejected { .. } => "rejected",
        }
    }
}

/// What one [`StreamingChecker::checkpoint`] call did.
#[derive(Clone, Debug)]
pub struct CheckpointReport {
    /// Checkpoint sequence number (1-based).
    pub seq: usize,
    /// Transactions ingested so far (monotone: compaction does not
    /// subtract — compacted and uncompacted runs of the same stream report
    /// the same count).
    pub txns: usize,
    /// Transactions still held live after this checkpoint's compaction.
    pub live_txns: usize,
    /// Transactions dropped by watermark compaction at this checkpoint.
    pub compacted: usize,
    /// Operations ingested so far.
    pub ops: usize,
    /// Current component count (transaction-bearing only).
    pub components: usize,
    /// Components re-checked at this checkpoint.
    pub dirty: usize,
    /// Of the dirty components, how many were rebuilt from scratch
    /// (first sight or merge) rather than delta-extended.
    pub rebuilt: usize,
    /// The verdict for the prefix.
    pub verdict: StreamVerdict,
    /// Wall-clock spent in this checkpoint call.
    pub elapsed: Duration,
}

/// The terminal rejection state: the prefix at the rejecting checkpoint
/// and the canonical batch report on it.
pub struct StreamRejection {
    /// The snapshot of the rejecting prefix (session-major).
    pub prefix: History,
    /// The batch engine's report on `prefix` — byte-identical to running
    /// [`CheckEngine::check`] on the snapshot with the same options.
    pub report: CheckReport,
    /// Operations ingested when the violation was detected.
    pub op_index: usize,
    /// Transactions ingested when the violation was detected.
    pub txn_count: usize,
    /// The rejecting checkpoint's sequence number.
    pub checkpoint: usize,
}

/// Cached per-component pipeline state (arrival-order local ids: position
/// in `txns` = local id, stable because arrivals only append).
struct ComponentState {
    /// Member transactions, ascending arrival ids.
    txns: Vec<TxnId>,
    /// The component polygraph, post-prune (known includes resolved
    /// edges; constraints are the survivors).
    poly: Polygraph,
    /// The warm reachability oracle (`None` only transiently).
    oracle: Option<Box<KnownGraph>>,
    /// Known edges (local ids) already fed to the oracle — dedup for
    /// delta insertion.
    known_set: HashSet<Edge>,
    /// Writers per key already incorporated into constraints (a prefix
    /// length of `facts.writers[key]`).
    writer_seen: HashMap<Key, usize>,
}

impl ComponentState {
    fn local(&self, t: TxnId) -> TxnId {
        TxnId(self.txns.binary_search(&t).expect("transaction outside its component") as u32)
    }

    fn local_edge(&self, e: Edge) -> Edge {
        Edge::new(self.local(e.from), self.local(e.to), e.label)
    }
}

/// The streaming checker (see the module docs).
pub struct StreamingChecker {
    isolation: IsolationLevel,
    opts: EngineOptions,
    stream: HistoryStream,
    comps: HashMap<u64, ComponentState>,
    /// Events consumed from the stream's fact log.
    cursor: usize,
    checkpoints: usize,
    rejection: Option<StreamRejection>,
    obs: Obs,
    /// `(txns, ops)` totals already folded into the metrics counters, so
    /// per-checkpoint deltas can be recorded from cumulative report fields.
    counted: (usize, usize),
}

impl StreamingChecker {
    /// A checker for `isolation` with the given engine knobs. Streaming
    /// requires generalized constraints and pruning (see the module docs).
    pub fn new(isolation: IsolationLevel, opts: EngineOptions) -> Self {
        assert!(opts.pruning, "streaming requires the prune stage (its oracle is the increment)");
        assert!(
            opts.mode == ConstraintMode::Generalized,
            "streaming supports generalized constraints only"
        );
        StreamingChecker {
            isolation,
            opts,
            stream: HistoryStream::new(),
            comps: HashMap::new(),
            cursor: 0,
            checkpoints: 0,
            rejection: None,
            obs: Obs::default(),
            counted: (0, 0),
        }
    }

    /// Attach observability handles (span tracer + metrics registry); the
    /// stream's compactor shares the tracer so `history.compact` spans land
    /// on the same timeline.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.stream.set_tracer(obs.tracer.clone());
        self.obs = obs;
        self
    }

    /// The checker's observability handles.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Open a new session.
    pub fn session(&mut self) -> SessionId {
        self.stream.session()
    }

    /// Push one complete transaction; returns its arrival id. Ingestion
    /// stays available after a terminal rejection (the verdict is stable;
    /// further transactions are recorded but no longer checked).
    pub fn push_transaction(
        &mut self,
        session: SessionId,
        ops: Vec<Op>,
        status: TxnStatus,
    ) -> TxnId {
        self.stream.push_transaction(session, ops, status)
    }

    /// Fallible ingest boundary: push one complete transaction, or report
    /// the delivery-contract violation as a typed [`IngestError`] without
    /// touching the stream. Live delivery paths use this.
    pub fn try_push_transaction(
        &mut self,
        session: SessionId,
        ops: Vec<Op>,
        status: TxnStatus,
    ) -> Result<TxnId, IngestError> {
        self.stream.try_push_transaction(session, ops, status)
    }

    /// Seal a session (no further transactions on it).
    pub fn seal_session(&mut self, session: SessionId) {
        self.stream.seal_session(session)
    }

    /// Fallible seal (idempotent; errors only on an unknown session).
    pub fn try_seal_session(&mut self, session: SessionId) -> Result<(), IngestError> {
        self.stream.try_seal_session(session)
    }

    /// The underlying stream (snapshot access, counters).
    pub fn stream(&self) -> &HistoryStream {
        &self.stream
    }

    /// The terminal rejection, if one occurred.
    pub fn rejection(&self) -> Option<&StreamRejection> {
        self.rejection.as_ref()
    }

    /// The checker's isolation level.
    pub fn isolation(&self) -> IsolationLevel {
        self.isolation
    }

    /// Produce a verdict for the prefix ingested so far, re-checking only
    /// the components dirtied since the previous checkpoint.
    pub fn checkpoint(&mut self) -> CheckpointReport {
        let report = {
            let mut span = self.obs.tracer.span_kv("checkpoint", kv! { seq: self.checkpoints + 1 });
            let report = self.checkpoint_inner();
            span.attr("verdict", report.verdict.kind());
            span.attr("dirty", report.dirty);
            span.attr("rebuilt", report.rebuilt);
            report
        };
        let m = &self.obs.metrics;
        m.counter("stream.checkpoints").inc();
        m.counter("stream.txns").add((report.txns - self.counted.0) as u64);
        m.counter("stream.ops").add((report.ops - self.counted.1) as u64);
        self.counted = (report.txns, report.ops);
        m.counter("stream.dirty_components").add(report.dirty as u64);
        m.counter("stream.rebuilt_components").add(report.rebuilt as u64);
        m.counter("compact.dropped_txns").add(report.compacted as u64);
        m.histogram_us("checkpoint.latency_us").observe_duration(report.elapsed);
        report
    }

    fn checkpoint_inner(&mut self) -> CheckpointReport {
        let t0 = Instant::now();
        self.checkpoints += 1;
        let seq = self.checkpoints;
        let (txns, ops) = (self.stream.total_pushed(), self.stream.num_ops());
        let live_txns = self.stream.len();
        let components = self.stream.shards().components().filter(|c| !c.txns.is_empty()).count();
        let base =
            |verdict: StreamVerdict, dirty: usize, rebuilt: usize, t0: Instant| CheckpointReport {
                seq,
                txns,
                live_txns,
                compacted: 0,
                ops,
                components,
                dirty,
                rebuilt,
                verdict,
                elapsed: t0.elapsed(),
            };

        // Terminal rejection: the stable verdict, no further work.
        if let Some(rej) = &self.rejection {
            let verdict = StreamVerdict::Rejected {
                anomaly: rejection_anomaly(&rej.report),
                first_violation_op: rej.op_index,
            };
            return base(verdict, 0, 0, t0);
        }

        // Axiom state: batch-canonical reporting, graph work skipped (the
        // event cursor stays put, so a healed prefix replays the backlog).
        // Watermark violations (fenced reads, duplicate writes of
        // compacted values) are streaming-only — the compacted snapshot no
        // longer contains the dropped writers a batch analysis would need
        // to see them — so they are appended to the snapshot's list.
        if !self.stream.facts().axioms_ok() {
            let healable = self.stream.facts().axioms_can_heal();
            let fence = self.stream.facts().watermark_violations().to_vec();
            let (prefix, _) = self.stream.snapshot();
            let mut violations = Facts::analyze(&prefix).violations;
            violations.extend(fence.iter().cloned());
            if !healable {
                // Monotone and watermark violations never heal:
                // canonicalize once and reject terminally, like a cyclic
                // violation.
                let mut report = CheckEngine::new(self.isolation, self.opts).check(&prefix);
                if report.accepted() {
                    // Watermark-only breakage: the batch engine cannot
                    // reject what the snapshot no longer shows; carry the
                    // watermark violations as the report's outcome.
                    debug_assert!(!fence.is_empty(), "unhealable axiom state must have a cause");
                    report.outcome = Outcome::AxiomViolations(violations);
                } else if let Outcome::AxiomViolations(vs) = &mut report.outcome {
                    vs.extend(fence.iter().cloned());
                }
                self.rejection = Some(StreamRejection {
                    prefix,
                    report,
                    op_index: ops,
                    txn_count: txns,
                    checkpoint: seq,
                });
                let verdict = StreamVerdict::Rejected { anomaly: None, first_violation_op: ops };
                return base(verdict, 0, 0, t0);
            }
            return base(StreamVerdict::AxiomViolations { violations, healable }, 0, 0, t0);
        }

        // Drop cached state for components that merged away.
        let live: HashSet<u64> = self.stream.shards().components().map(|c| c.tag).collect();
        self.comps.retain(|tag, _| live.contains(tag));

        // Group the new events by their *current* component.
        let events = self.stream.facts().events();
        let mut per_tag: BTreeMap<u64, Vec<FactEvent>> = BTreeMap::new();
        for &ev in &events[self.cursor..] {
            let tag = match ev {
                FactEvent::Txn { id } => {
                    let session = self.stream.txn(id).session;
                    self.stream.shards().component_of_session(session).tag
                }
                FactEvent::FinalWrite { key, .. }
                | FactEvent::Wr { key, .. }
                | FactEvent::InitRead { key, .. } => {
                    self.stream.shards().component_of_key(key).expect("key was pushed").tag
                }
            };
            per_tag.entry(tag).or_default().push(ev);
        }
        self.cursor = events.len();

        let dirty = per_tag.len();
        let workers = self.opts.checkpoint_threads.resolve(dirty);
        let prune_opts =
            crate::engine::prune_options_for(&self.opts, self.stream.facts().facts(), workers);
        let solve_plan = crate::engine::solve_plan_for(&self.opts, workers);

        // Collect the dirty components as independent jobs: each owns its
        // cached state (if any) and its event slice. Every job runs — even
        // after one rejects — so `rebuilt` and the cached states are
        // identical for any worker count (the canonical rejection report
        // below is a pure function of the snapshot either way).
        struct DirtyJob {
            tag: u64,
            events: Vec<FactEvent>,
            state: Option<ComponentState>,
        }
        let jobs: Vec<DirtyJob> = per_tag
            .into_iter()
            .map(|(tag, events)| DirtyJob { tag, events, state: self.comps.remove(&tag) })
            .collect();
        let run_job = |job: DirtyJob| -> (u64, ComponentState, bool, bool) {
            let mut span = self
                .obs
                .tracer
                .span_kv("component", kv! { tag: job.tag, events: job.events.len() });
            let (tag, state, ok, was_rebuilt) = match job.state {
                Some(mut state) => {
                    let ok = self.check_delta(&mut state, &job.events, &prune_opts, &solve_plan);
                    (job.tag, state, ok, false)
                }
                None => {
                    let info = self
                        .stream
                        .shards()
                        .components()
                        .find(|c| c.tag == job.tag)
                        .expect("grouped tag is live")
                        .clone();
                    let (state, ok) = self.check_rebuild(&info, &prune_opts, &solve_plan);
                    (job.tag, state, ok, true)
                }
            };
            span.attr("rebuilt", was_rebuilt);
            span.attr("ok", ok);
            (tag, state, ok, was_rebuilt)
        };
        let results: Vec<(u64, ComponentState, bool, bool)> = if workers <= 1 {
            jobs.into_iter().map(run_job).collect()
        } else {
            // Scoped-thread fan-out with atomic work stealing, mirroring
            // the sharded batch engine's `check_shards`.
            let slots: Vec<Mutex<Option<DirtyJob>>> =
                jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
            let next = AtomicUsize::new(0);
            let out: Mutex<Vec<(u64, ComponentState, bool, bool)>> = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= slots.len() {
                            break;
                        }
                        let job = slots[i].lock().unwrap().take().expect("each slot claimed once");
                        let res = run_job(job);
                        out.lock().unwrap().push(res);
                    });
                }
            });
            out.into_inner().unwrap()
        };
        let mut rebuilt = 0usize;
        let mut rejected = false;
        for (tag, state, ok, was_rebuilt) in results {
            self.comps.insert(tag, state);
            rebuilt += was_rebuilt as usize;
            rejected |= !ok;
        }

        if rejected {
            // Canonicalize once against the batch engine on this prefix;
            // the verdict (witness included) is then byte-identical to a
            // batch check and stays stable for the rest of the stream.
            let (prefix, _) = self.stream.snapshot();
            let report = CheckEngine::new(self.isolation, self.opts).check(&prefix);
            if report.accepted() {
                // A dirty-recheck false positive would be a bug in the
                // delta machinery; trust the batch verdict, drop every
                // cache so the next checkpoint rebuilds from scratch.
                debug_assert!(false, "streaming detector rejected a batch-accepted prefix");
                self.comps.clear();
                return base(StreamVerdict::Accepted, dirty, rebuilt, t0);
            }
            let verdict = StreamVerdict::Rejected {
                anomaly: rejection_anomaly(&report),
                first_violation_op: ops,
            };
            self.rejection = Some(StreamRejection {
                prefix,
                report,
                op_index: ops,
                txn_count: txns,
                checkpoint: seq,
            });
            return base(verdict, dirty, rebuilt, t0);
        }

        // Watermark GC: the settled prefix of every fully sealed component
        // can be dropped now that the prefix is accepted.
        let compacted = {
            let mut span = self.obs.tracer.span("compact");
            let compacted = self.maybe_compact();
            span.attr("dropped", compacted);
            compacted
        };
        let mut report = base(StreamVerdict::Accepted, dirty, rebuilt, t0);
        report.live_txns = self.stream.len();
        report.compacted = compacted;
        report
    }

    /// Compact the settled prefix of every eligible component (watermark
    /// GC). Called only after an accepted checkpoint, when the event
    /// cursor is fully drained.
    ///
    /// Per component, the watermark requires: every contributing session
    /// sealed, cached (accepted) pipeline state present, and a settled
    /// prefix — the complement of the *retained* set, which is the forward
    /// closure (along known dependency edges, plus each retained reader's
    /// `WR` sources) of the per-key final writers, the endpoints of the
    /// still-open constraints, and every non-committed transaction (whose
    /// writes stay readable forever). That closure makes the drop set exact: no
    /// survivor has a known edge into it, every reader of a dropped writer
    /// is dropped, and no open constraint straddles the watermark — so
    /// dropping it is a pure subgraph restriction and every later verdict,
    /// violation list, and witness equals the uncompacted run's (fence
    /// reads excepted; see [`HistoryStream::compact`]).
    fn maybe_compact(&mut self) -> usize {
        let threshold = match self.opts.compact {
            CompactMode::Off => return 0,
            CompactMode::On => 1,
            // Skip remaps that cannot pay for themselves.
            CompactMode::Auto => 64,
        };
        debug_assert_eq!(self.cursor, self.stream.facts().events().len());

        // Phase 1: per-component retained sets, merged into one global
        // drop mask.
        let facts = self.stream.facts().facts();
        let mut drop = vec![false; self.stream.len()];
        let mut keeps: HashMap<u64, Vec<bool>> = HashMap::new();
        let mut dropped = 0usize;
        for info in self.stream.shards().components() {
            if info.txns.is_empty() {
                continue;
            }
            let Some(state) = self.comps.get(&info.tag) else { continue };
            if !info.sessions.iter().all(|&s| self.stream.is_sealed(s)) {
                continue;
            }
            let n = state.txns.len();
            debug_assert_eq!(n, info.txns.len());
            let mut keep = vec![false; n];
            let mut stack: Vec<u32> = Vec::new();
            let mark = |i: u32, keep: &mut Vec<bool>, stack: &mut Vec<u32>| {
                if !keep[i as usize] {
                    keep[i as usize] = true;
                    stack.push(i);
                }
            };
            // Seed: the final writer of every key (later reads of the
            // key's live value must keep resolving) and the endpoints of
            // the open constraints (the undecided frontier).
            for &key in &info.keys {
                if let Some(&w) = facts.writers.get(&key).and_then(|ws| ws.last()) {
                    mark(state.local(w).0, &mut keep, &mut stack);
                }
            }
            for c in &state.poly.constraints {
                for e in c.either.iter().chain(c.or.iter()) {
                    mark(e.from.0, &mut keep, &mut stack);
                    mark(e.to.0, &mut keep, &mut stack);
                }
            }
            // Non-committed transactions never settle: their writes stay
            // readable forever (an aborted read is a terminal, monotone
            // violation that must still classify as one), but they are
            // invisible to `facts.writers` — so they are retained as
            // permanent fence posts rather than dropped as history.
            for (i, &gid) in state.txns.iter().enumerate() {
                if !self.stream.txn(gid).committed() {
                    mark(i as u32, &mut keep, &mut stack);
                }
            }
            // Forward closure: successors along known edges, plus the `WR`
            // sources of retained readers (so no dropped writer keeps a
            // live reader).
            let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
            for e in &state.poly.known {
                adj[e.from.idx()].push(e.to.0);
            }
            while let Some(i) = stack.pop() {
                for &j in &adj[i as usize] {
                    if !keep[j as usize] {
                        keep[j as usize] = true;
                        stack.push(j);
                    }
                }
                for &(_, _, src) in &facts.reads[state.txns[i as usize].idx()] {
                    if let WrSource::Txn(w) = src {
                        let j = state.local(w).0;
                        if !keep[j as usize] {
                            keep[j as usize] = true;
                            stack.push(j);
                        }
                    }
                }
            }
            let d = keep.iter().filter(|&&kept| !kept).count();
            if d < threshold {
                continue;
            }
            for (i, &kept) in keep.iter().enumerate() {
                if !kept {
                    drop[state.txns[i].idx()] = true;
                }
            }
            dropped += d;
            keeps.insert(info.tag, keep);
        }
        if dropped == 0 {
            return 0;
        }

        // Phase 2: compact the stream (facts, sessions, shard membership)
        // and re-anchor the event cursor on the now-empty log.
        let map = self.stream.compact(&drop);
        self.cursor = 0;

        // Phase 3: remap every cached component in place. Untouched
        // components only renumber their member list (local ids are
        // positional and unchanged); compacted ones restrict their oracle,
        // polygraph, and bookkeeping to the survivors.
        let facts = self.stream.facts().facts();
        for (tag, state) in self.comps.iter_mut() {
            let Some(keep) = keeps.get(tag) else {
                for id in state.txns.iter_mut() {
                    *id = TxnId(map[id.idx()]);
                }
                continue;
            };
            let oracle = state.oracle.as_mut().expect("live component has an oracle");
            let lmap = oracle.compact(keep);
            let n2 = keep.iter().filter(|&&kept| kept).count();
            state.poly.compact(&lmap, n2);
            state.known_set = state
                .known_set
                .iter()
                .filter_map(|e| {
                    let (f, t) = (lmap[e.from.idx()], lmap[e.to.idx()]);
                    (f != u32::MAX && t != u32::MAX).then(|| Edge::new(TxnId(f), TxnId(t), e.label))
                })
                .collect();
            state.txns = state
                .txns
                .iter()
                .enumerate()
                .filter(|&(i, _)| keep[i])
                .map(|(_, &g)| TxnId(map[g.idx()]))
                .collect();
            state.writer_seen = state
                .writer_seen
                .keys()
                .map(|&key| (key, facts.writers.get(&key).map_or(0, Vec::len)))
                .collect();
        }
        self.comps.retain(|_, s| !s.txns.is_empty());
        dropped
    }

    /// First sight of a component (or a post-merge rebuild): construct
    /// and run the full staged pipeline on it. Returns the cached state
    /// and whether the component accepted.
    fn check_rebuild(
        &self,
        info: &RootInfo,
        prune_opts: &PruneOptions,
        solve_plan: &SolvePlan,
    ) -> (ComponentState, bool) {
        let facts = self.stream.facts().facts();
        let mut keys = info.keys.clone();
        keys.sort_unstable();
        let comp =
            ShardComponent { sessions: info.sessions.clone(), txns: info.txns.clone(), keys };
        let so: Vec<(TxnId, TxnId)> = comp
            .txns
            .iter()
            .filter_map(|&t| self.stream.session_predecessor(t).map(|p| (p, t)))
            .collect();
        let mut poly = Polygraph::from_component_parts(
            &so,
            facts,
            self.opts.mode,
            self.isolation.semantics(),
            &comp,
        );
        let writer_seen =
            comp.keys.iter().map(|&k| (k, facts.writers.get(&k).map_or(0, Vec::len))).collect();
        let known_set = poly.known.iter().copied().collect();
        let (result, oracle) = poly.prune_with_oracle_traced(prune_opts, &self.obs.tracer);
        let mut state =
            ComponentState { txns: comp.txns, poly, oracle: None, known_set, writer_seen };
        match result {
            PruneResult::Violation(_) => (state, false),
            PruneResult::Pruned(stats) => {
                self.record_prune(&stats);
                let ok = self.encode_and_solve(&mut state, oracle, solve_plan);
                (state, ok)
            }
        }
    }

    /// Fold one component's prune counters into the metrics registry
    /// (same names as the batch engine — per-component work is identical
    /// for any checkpoint worker count, so the totals stay deterministic).
    fn record_prune(&self, p: &PruneStats) {
        let m = &self.obs.metrics;
        m.counter("prune.constraints_before").add(p.constraints_before as u64);
        m.counter("prune.constraints_after").add(p.constraints_after as u64);
        m.counter("prune.closure_updates").add(p.closure_updates as u64);
        m.counter("prune.incremental_edges").add(p.incremental_edges as u64);
        m.counter("prune.graph_builds").add(p.graph_builds as u64);
    }

    /// Delta path: extend the cached polygraph and oracle with the
    /// component's new events, resume pruning from the touched set, then
    /// re-encode and re-solve. Returns whether the component accepted.
    ///
    /// Constraint maintenance distinguishes three cases per affected
    /// writer pair:
    ///
    /// * **new pair** (a new writer joined the key): a fresh generalized
    ///   constraint over the current reader sets — it cannot pre-exist;
    /// * **decided pair** gaining a reader (one writer already reaches the
    ///   other in the oracle): the resolution is fixed in every compatible
    ///   graph, so the new reader's anti-dependency lands directly as a
    ///   known edge — no constraint regeneration, no re-resolution;
    /// * **open pair** gaining a reader: the surviving constraint is
    ///   dropped and regenerated over the grown reader sets.
    fn check_delta(
        &self,
        state: &mut ComponentState,
        events: &[FactEvent],
        prune_opts: &PruneOptions,
        solve_plan: &SolvePlan,
    ) -> bool {
        let facts = self.stream.facts().facts();
        let semantics = self.isolation.semantics();
        let mut new_known: Vec<Edge> = Vec::new(); // global ids
                                                   // (key, t, s) with `t` before `s` in the key's writer list (writer
                                                   // lists are ascending in arrival order, so min/max normalizes).
        let mut new_pairs: Vec<(Key, TxnId, TxnId)> = Vec::new();
        let mut fresh: HashSet<(Key, TxnId, TxnId)> = HashSet::new();
        let mut reader_growth: Vec<(Key, TxnId, TxnId)> = Vec::new(); // (key, writer, reader)
        for &ev in events {
            match ev {
                FactEvent::Txn { id } => {
                    debug_assert!(state.txns.last().is_none_or(|&t| t < id));
                    state.txns.push(id);
                    if let Some(p) = self.stream.session_predecessor(id) {
                        new_known.push(Edge::new(p, id, Label::So));
                    }
                }
                FactEvent::FinalWrite { key, writer } => {
                    let seen = state.writer_seen.entry(key).or_insert(0);
                    let writers = &facts.writers[&key];
                    debug_assert_eq!(writers[*seen], writer, "writer events arrive in order");
                    for &w2 in &writers[..*seen] {
                        new_pairs.push((key, w2, writer));
                        fresh.insert((key, w2, writer));
                    }
                    *seen += 1;
                    // Init readers (past and in-batch; dedup below) gain a
                    // known anti-dependency to the new writer.
                    if let Some(rs) = facts.init_readers.get(&key) {
                        for &r in rs {
                            if r != writer {
                                new_known.push(Edge::new(r, writer, Label::Rw(key)));
                            }
                        }
                    }
                }
                FactEvent::Wr { key, writer, reader } => {
                    new_known.push(Edge::new(writer, reader, Label::Wr(key)));
                    if semantics == polysi_polygraph::Semantics::Ser
                        && facts.writes_key(reader, key)
                    {
                        new_known.push(Edge::new(writer, reader, Label::Ww(key)));
                    }
                    reader_growth.push((key, writer, reader));
                }
                FactEvent::InitRead { key, reader } => {
                    let seen = state.writer_seen.get(&key).copied().unwrap_or(0);
                    let writers = facts.writers.get(&key).map_or(&[][..], Vec::as_slice);
                    for &w in &writers[..seen.min(writers.len())] {
                        if w != reader {
                            new_known.push(Edge::new(reader, w, Label::Rw(key)));
                        }
                    }
                }
            }
        }

        // Grow the vertex space, then land the edge delta (dedup +
        // localize) so reachability reflects this checkpoint's knowns.
        let n = state.txns.len();
        state.poly.n = n;
        let mut oracle = state.oracle.take().expect("live component has an oracle");
        oracle.grow(n);
        let mut touched = vec![false; n];
        let mut delta: Vec<Edge> = Vec::new();
        for e in new_known {
            let le = state.local_edge(e);
            if state.known_set.insert(le) {
                touched[le.from.idx()] = true;
                touched[le.to.idx()] = true;
                delta.push(le);
            }
        }
        if oracle.insert_edges_bulk(&delta).is_err() {
            return false; // terminal; the canonical witness comes from batch
        }
        state.poly.known.extend(delta);

        // Fresh constraints for the new writer pairs.
        let mut new_constraints: Vec<Constraint> = Vec::new();
        let localize = |c: &mut Constraint, touched: &mut [bool], state: &ComponentState| {
            for e in c.either.iter_mut().chain(c.or.iter_mut()) {
                *e = state.local_edge(*e);
                touched[e.from.idx()] = true;
                touched[e.to.idx()] = true;
            }
        };
        for &(key, t, s) in &new_pairs {
            let mut c = Constraint::generalized(key, t, s, |w| facts.readers_of(key, w));
            localize(&mut c, &mut touched, state);
            new_constraints.push(c);
        }

        // Reader growth against pre-existing pairs: decided pairs take the
        // new anti-dependency as a direct known edge, open pairs are
        // marked for regeneration.
        let mut regen: BTreeSet<(Key, TxnId, TxnId)> = BTreeSet::new();
        let mut follow_on: Vec<Edge> = Vec::new(); // local ids
        for &(key, w, r) in &reader_growth {
            let seen = state.writer_seen.get(&key).copied().unwrap_or(0);
            let (lw, lr) = (state.local(w), state.local(r));
            for &w2 in &facts.writers[&key][..seen] {
                if w2 == w {
                    continue;
                }
                let pair = if w < w2 { (key, w, w2) } else { (key, w2, w) };
                if fresh.contains(&pair) {
                    continue; // the fresh constraint already carries `r`
                }
                let lw2 = state.local(w2);
                if oracle.reaches(lw, lw2) {
                    // `w` precedes `w2` in every compatible graph, so the
                    // new reader of `w` must too (the prune rule's forced
                    // conclusion, applied directly).
                    if r != w2 {
                        let e = Edge::new(lr, lw2, Label::Rw(key));
                        if state.known_set.insert(e) {
                            touched[e.from.idx()] = true;
                            touched[e.to.idx()] = true;
                            follow_on.push(e);
                        }
                    }
                } else if !oracle.reaches(lw2, lw) {
                    regen.insert(pair);
                }
                // `w2 ⇝ w`: readers of `w` are unconstrained against `w2`
                // on this side; nothing to do.
            }
        }
        if !follow_on.is_empty() {
            if oracle.insert_edges_bulk(&follow_on).is_err() {
                return false;
            }
            state.poly.known.extend(follow_on);
        }

        // Open pairs: drop the survivor, regenerate over the grown reader
        // sets (re-resolution is impossible here — neither direction is
        // reachable — so no duplicate work is queued).
        if !regen.is_empty() {
            state.poly.constraints.retain(|c| {
                let ww = c.either[0];
                debug_assert!(matches!(ww.label, Label::Ww(_)));
                let (t, s) = (state.txns[ww.from.idx()], state.txns[ww.to.idx()]);
                let pair = if t < s { (c.key, t, s) } else { (c.key, s, t) };
                !regen.contains(&pair)
            });
            for &(key, t, s) in &regen {
                let mut c = Constraint::generalized(key, t, s, |w| facts.readers_of(key, w));
                localize(&mut c, &mut touched, state);
                new_constraints.push(c);
            }
        }
        state.poly.constraints.extend(new_constraints);

        let (result, oracle) =
            state.poly.prune_resume_traced(oracle, &touched, prune_opts, &self.obs.tracer);
        match result {
            PruneResult::Violation(_) => false,
            PruneResult::Pruned(stats) => {
                self.record_prune(&stats);
                self.encode_and_solve(state, oracle, solve_plan)
            }
        }
    }

    /// Shared encode+solve tail; stores the oracle back into the state.
    fn encode_and_solve(
        &self,
        state: &mut ComponentState,
        oracle: Option<Box<KnownGraph>>,
        solve_plan: &SolvePlan,
    ) -> bool {
        let facts = self.stream.facts().facts();
        let (mut solver, estats) =
            encode(&state.poly, self.opts.phase_seeding, oracle.as_deref(), self.opts.reach_oracle);
        solver.set_tracer(self.obs.tracer.clone());
        let m = &self.obs.metrics;
        m.counter("encode.vars").add(estats.vars as u64);
        m.counter("encode.clauses").add(estats.clauses as u64);
        m.counter("encode.known_edges").add(estats.known_edges as u64);
        m.counter("encode.symbolic_edges").add(estats.symbolic_edges as u64);
        let degrees: Vec<u32> = state.txns.iter().map(|&t| facts.txn_degree(t) as u32).collect();
        let (sat, _) = crate::solve::run_solve(&state.poly, solver, Some(&degrees), solve_plan);
        state.oracle = oracle;
        sat
    }
}

/// The anomaly classification of a canonical rejection report, if cyclic.
fn rejection_anomaly(report: &CheckReport) -> Option<Anomaly> {
    match &report.outcome {
        Outcome::CyclicViolation(v) => Some(v.anomaly),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::check;
    use polysi_history::{Key, Value};

    fn k(n: u64) -> Key {
        Key(n)
    }
    fn v(n: u64) -> Value {
        Value(n)
    }
    fn w(key: u64, value: u64) -> Op {
        Op::Write { key: k(key), value: v(value) }
    }
    fn r(key: u64, value: u64) -> Op {
        Op::Read { key: k(key), value: v(value) }
    }

    fn assert_matches_batch(c: &mut StreamingChecker) -> bool {
        let (prefix, _) = c.stream().snapshot();
        let batch = check(&prefix, c.isolation(), &EngineOptions::default());
        let cp = c.checkpoint();
        assert_eq!(
            cp.verdict.accepted(),
            batch.accepted(),
            "checkpoint {} diverged from batch on {} txns",
            cp.seq,
            cp.txns
        );
        cp.verdict.accepted()
    }

    /// A clean two-component stream stays accepted at every checkpoint;
    /// per-component state is delta-extended, not rebuilt.
    #[test]
    fn clean_stream_accepts_at_every_checkpoint() {
        let mut c = StreamingChecker::new(IsolationLevel::Si, EngineOptions::default());
        let s0 = c.session();
        let s1 = c.session();
        c.push_transaction(s0, vec![w(1, 1)], TxnStatus::Committed);
        c.push_transaction(s1, vec![w(10, 1)], TxnStatus::Committed);
        let cp = c.checkpoint();
        assert!(cp.verdict.accepted());
        assert_eq!((cp.dirty, cp.rebuilt, cp.components), (2, 2, 2));
        for i in 2..6u64 {
            c.push_transaction(s0, vec![r(1, i - 1), w(1, i)], TxnStatus::Committed);
            c.push_transaction(s1, vec![r(10, i - 1), w(10, i)], TxnStatus::Committed);
            let cp = c.checkpoint();
            assert!(cp.verdict.accepted());
            assert_eq!((cp.dirty, cp.rebuilt), (2, 0), "growth must take the delta path");
            assert_matches_batch(&mut c);
        }
    }

    /// A lost update whose stale second write arrives last: accepted at
    /// every earlier checkpoint, terminally rejected at the flip, with the
    /// canonical report equal to a batch check of the rejecting prefix.
    #[test]
    fn late_anomaly_flips_exactly_once() {
        let mut c = StreamingChecker::new(IsolationLevel::Si, EngineOptions::default());
        let s0 = c.session();
        let s1 = c.session();
        let s2 = c.session();
        c.push_transaction(s0, vec![w(1, 1)], TxnStatus::Committed);
        assert!(c.checkpoint().verdict.accepted());
        c.push_transaction(s1, vec![r(1, 1), w(1, 2)], TxnStatus::Committed);
        assert!(c.checkpoint().verdict.accepted());
        c.push_transaction(s2, vec![r(1, 1), w(1, 3)], TxnStatus::Committed);
        let cp = c.checkpoint();
        let StreamVerdict::Rejected { anomaly, first_violation_op } = cp.verdict else {
            panic!("lost update must reject");
        };
        assert_eq!(anomaly, Some(Anomaly::LostUpdate));
        assert_eq!(first_violation_op, 5);
        let rej = c.rejection().expect("terminal rejection recorded");
        assert!(!rej.report.accepted());
        assert_eq!(rej.checkpoint, 3);
        // Stable thereafter, even as more (clean) transactions arrive.
        c.push_transaction(s0, vec![w(2, 9)], TxnStatus::Committed);
        let again = c.checkpoint();
        assert!(matches!(again.verdict, StreamVerdict::Rejected { first_violation_op: 5, .. }));
        assert_eq!(again.dirty, 0);
    }

    /// A bridging transaction merges two components; the merged component
    /// is rebuilt and the verdict still matches batch.
    #[test]
    fn merges_rebuild_and_match_batch() {
        let mut c = StreamingChecker::new(IsolationLevel::Si, EngineOptions::default());
        let s0 = c.session();
        let s1 = c.session();
        c.push_transaction(s0, vec![w(1, 1)], TxnStatus::Committed);
        c.push_transaction(s1, vec![w(10, 1)], TxnStatus::Committed);
        assert!(c.checkpoint().verdict.accepted());
        c.push_transaction(s0, vec![r(1, 1), r(10, 1), w(1, 2)], TxnStatus::Committed);
        let cp = c.checkpoint();
        assert!(cp.verdict.accepted());
        assert_eq!((cp.dirty, cp.rebuilt, cp.components), (1, 1, 1), "merge forces a rebuild");
        assert_matches_batch(&mut c);
    }

    /// Reads arriving before their writers surface as (healable) axiom
    /// violations, then the stream recovers and keeps checking.
    #[test]
    fn axiom_break_heals_and_checking_resumes() {
        let mut c = StreamingChecker::new(IsolationLevel::Si, EngineOptions::default());
        let s0 = c.session();
        let s1 = c.session();
        c.push_transaction(s0, vec![r(1, 7)], TxnStatus::Committed);
        let cp = c.checkpoint();
        let StreamVerdict::AxiomViolations { violations, healable } = cp.verdict else {
            panic!("unresolved read must fail the axioms");
        };
        assert!(healable);
        assert!(matches!(violations[0], AxiomViolation::UnknownValueRead { .. }));
        c.push_transaction(s1, vec![w(1, 7)], TxnStatus::Committed);
        assert!(c.checkpoint().verdict.accepted());
        // The late WR edge is really in the graph: a stale RMW pair on the
        // same key must now reject.
        c.push_transaction(s0, vec![r(1, 7), w(1, 8)], TxnStatus::Committed);
        c.push_transaction(s1, vec![r(1, 7), w(1, 9)], TxnStatus::Committed);
        assert!(!c.checkpoint().verdict.accepted());
    }

    /// Monotone axiom violations are terminal.
    #[test]
    fn monotone_axiom_violation_is_terminal() {
        let mut c = StreamingChecker::new(IsolationLevel::Si, EngineOptions::default());
        let s0 = c.session();
        c.push_transaction(s0, vec![w(1, 5)], TxnStatus::Committed);
        c.push_transaction(s0, vec![w(1, 5)], TxnStatus::Committed);
        let cp = c.checkpoint();
        assert!(matches!(cp.verdict, StreamVerdict::Rejected { anomaly: None, .. }));
        assert!(c.rejection().is_some());
    }

    /// Watermark GC: a sealed component's settled prefix is dropped, the
    /// stream keeps checking against the survivors, and counters stay
    /// monotone.
    #[test]
    fn compaction_drops_settled_prefix_and_keeps_checking() {
        let opts = EngineOptions { compact: CompactMode::On, ..EngineOptions::default() };
        let mut c = StreamingChecker::new(IsolationLevel::Si, opts);
        let s0 = c.session();
        let s1 = c.session();
        // Component A: three blind writes on key 1, ordered by session
        // order; the settled prefix is everything but the final writer.
        c.push_transaction(s0, vec![w(1, 1)], TxnStatus::Committed);
        c.push_transaction(s0, vec![w(1, 2)], TxnStatus::Committed);
        c.push_transaction(s0, vec![w(1, 3)], TxnStatus::Committed);
        // Component B stays live.
        c.push_transaction(s1, vec![w(10, 1)], TxnStatus::Committed);
        c.seal_session(s0);
        let cp = c.checkpoint();
        assert!(cp.verdict.accepted());
        assert_eq!(cp.compacted, 2, "settled prefix below the final writer is dropped");
        assert_eq!((cp.txns, cp.live_txns), (4, 2));

        // Later transactions resolve against the surviving final writer,
        // and the verdict still matches batch on the compacted snapshot.
        let s2 = c.session();
        c.push_transaction(s2, vec![r(1, 3), w(1, 4)], TxnStatus::Committed);
        c.push_transaction(s1, vec![r(10, 1), w(10, 2)], TxnStatus::Committed);
        let cp = c.checkpoint();
        assert!(cp.verdict.accepted());
        assert_eq!(cp.txns, 6, "txns count stays monotone across compaction");
        assert_matches_batch(&mut c);
        // A stale RMW against the surviving writer still rejects.
        let s3 = c.session();
        c.push_transaction(s3, vec![r(1, 3), w(1, 5)], TxnStatus::Committed);
        let cp = c.checkpoint();
        assert!(matches!(
            cp.verdict,
            StreamVerdict::Rejected { anomaly: Some(Anomaly::LostUpdate), .. }
        ));
    }

    /// The watermark refuses to cross open reads: an RMW chain keeps every
    /// read's source alive, so nothing is dropped even when fully sealed.
    #[test]
    fn compaction_refuses_to_cross_open_reads() {
        let opts = EngineOptions { compact: CompactMode::On, ..EngineOptions::default() };
        let mut c = StreamingChecker::new(IsolationLevel::Si, opts);
        let s0 = c.session();
        c.push_transaction(s0, vec![w(1, 1)], TxnStatus::Committed);
        c.push_transaction(s0, vec![r(1, 1), w(1, 2)], TxnStatus::Committed);
        c.push_transaction(s0, vec![r(1, 2), w(1, 3)], TxnStatus::Committed);
        c.seal_session(s0);
        let cp = c.checkpoint();
        assert!(cp.verdict.accepted());
        assert_eq!(cp.compacted, 0, "every prefix txn is a WR source of a survivor");
        assert_eq!(cp.live_txns, 3);
    }

    /// `Auto` defers compactions too small to pay for the remap; `On`
    /// takes them.
    #[test]
    fn auto_compaction_defers_small_drops() {
        let mut c = StreamingChecker::new(IsolationLevel::Si, EngineOptions::default());
        let s0 = c.session();
        c.push_transaction(s0, vec![w(1, 1)], TxnStatus::Committed);
        c.push_transaction(s0, vec![w(1, 2)], TxnStatus::Committed);
        c.seal_session(s0);
        let cp = c.checkpoint();
        assert!(cp.verdict.accepted());
        assert_eq!(cp.compacted, 0, "one droppable txn is below the auto threshold");
        assert_eq!(cp.live_txns, 2);
    }

    /// An initial-value read below the watermark is a terminal rejection
    /// carrying the fenced-read violation (batch cannot reproduce it: the
    /// compacted snapshot no longer shows the dropped writers).
    #[test]
    fn fenced_init_read_rejects_terminally() {
        let opts = EngineOptions { compact: CompactMode::On, ..EngineOptions::default() };
        let mut c = StreamingChecker::new(IsolationLevel::Si, opts);
        let s0 = c.session();
        c.push_transaction(s0, vec![w(1, 1)], TxnStatus::Committed);
        c.push_transaction(s0, vec![w(1, 2)], TxnStatus::Committed);
        c.push_transaction(s0, vec![w(1, 3)], TxnStatus::Committed);
        c.seal_session(s0);
        let cp = c.checkpoint();
        assert!(cp.verdict.accepted());
        assert_eq!(cp.compacted, 2);
        let s1 = c.session();
        c.push_transaction(s1, vec![r(1, 0)], TxnStatus::Committed);
        let cp = c.checkpoint();
        assert!(matches!(cp.verdict, StreamVerdict::Rejected { anomaly: None, .. }));
        let rej = c.rejection().expect("fence rejection is terminal");
        let Outcome::AxiomViolations(vs) = &rej.report.outcome else {
            panic!("fence rejection must carry axiom violations");
        };
        assert!(vs.iter().any(|v| matches!(v, AxiomViolation::FencedRead { .. })));
        // Stable thereafter.
        c.push_transaction(s1, vec![w(2, 1)], TxnStatus::Committed);
        assert!(matches!(c.checkpoint().verdict, StreamVerdict::Rejected { .. }));
    }

    /// Compacted and uncompacted runs of the same stream produce the same
    /// verdicts and monotone counters at every checkpoint.
    #[test]
    fn compaction_is_verdict_invisible() {
        let run = |mode: CompactMode| {
            let opts = EngineOptions { compact: mode, ..EngineOptions::default() };
            let mut c = StreamingChecker::new(IsolationLevel::Si, opts);
            let mut digest: Vec<(usize, usize, bool)> = Vec::new();
            let s0 = c.session();
            let s1 = c.session();
            for i in 0..6u64 {
                if i < 3 {
                    c.push_transaction(s0, vec![w(1, i + 1)], TxnStatus::Committed);
                }
                c.push_transaction(s1, vec![w(10, i + 1), r(10, i + 1)], TxnStatus::Committed);
                if i == 2 {
                    c.seal_session(s0);
                    let s2 = c.session();
                    c.push_transaction(s2, vec![r(1, 3), w(1, 100)], TxnStatus::Committed);
                    c.seal_session(s2);
                }
                let cp = c.checkpoint();
                digest.push((cp.txns, cp.ops, cp.verdict.accepted()));
            }
            digest
        };
        assert_eq!(run(CompactMode::Off), run(CompactMode::On));
        assert_eq!(run(CompactMode::Off), run(CompactMode::Auto));
    }

    /// SER streaming rejects a write-skew chain SI accepts, at the same
    /// checkpoint a batch SER check first would.
    #[test]
    fn ser_stream_rejects_write_skew_chain() {
        let run = |isolation: IsolationLevel| {
            let mut c = StreamingChecker::new(isolation, EngineOptions::default());
            let sessions: Vec<SessionId> = (0..4).map(|_| c.session()).collect();
            c.push_transaction(sessions[0], vec![w(1, 1), w(2, 2), w(3, 3)], TxnStatus::Committed);
            assert!(assert_matches_batch_for(&mut c));
            c.push_transaction(sessions[1], vec![r(1, 1), w(2, 22)], TxnStatus::Committed);
            assert!(assert_matches_batch_for(&mut c));
            c.push_transaction(sessions[2], vec![r(2, 2), w(3, 33)], TxnStatus::Committed);
            assert!(assert_matches_batch_for(&mut c));
            c.push_transaction(sessions[3], vec![r(3, 3), w(1, 11)], TxnStatus::Committed);
            let (prefix, _) = c.stream().snapshot();
            let batch = check(&prefix, isolation, &EngineOptions::default());
            let cp = c.checkpoint();
            assert_eq!(cp.verdict.accepted(), batch.accepted());
            cp.verdict.accepted()
        };
        fn assert_matches_batch_for(c: &mut StreamingChecker) -> bool {
            super::tests::assert_matches_batch(c)
        }
        assert!(run(IsolationLevel::Si), "write skew is SI-allowed");
        assert!(!run(IsolationLevel::Ser), "write skew chain is not serializable");
    }
}
