//! PolySI-List (Appendix F): checking SI over Elle-style *list-append*
//! histories.
//!
//! With the list data model, each key holds a list; transactions append
//! unique values and reads return the whole list. Observed lists expose the
//! per-key version order directly (every read is a prefix of the final
//! order), so **no constraints remain**: the dependency graph is fully
//! known and checking reduces to one acyclicity test — which is why the
//! paper's Figure 15 shows sub-second checking times across all workloads.

use crate::anomaly::Anomaly;
use polysi_history::{Key, TxnId, TxnStatus, Value};
use polysi_polygraph::{Constraint, Edge, KnownGraph, KnownGraphResult, Label};
use polysi_solver::{Lit, SolveResult, Solver};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// An operation over list-valued keys.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ListOp {
    /// Append `value` to `key`'s list.
    Append {
        /// Target key.
        key: Key,
        /// Appended (globally unique per key) value.
        value: Value,
    },
    /// Read `key`'s full list.
    Read {
        /// Target key.
        key: Key,
        /// The observed list.
        list: Vec<Value>,
    },
}

/// A transaction over list-valued keys.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ListTxn {
    /// Operations in program order.
    pub ops: Vec<ListOp>,
    /// Commit status.
    pub status: TxnStatus,
}

/// A list-append history: sessions of list transactions.
#[derive(Clone, Default, Debug)]
pub struct ListHistory {
    /// Sessions, each a sequence of transactions in session order.
    pub sessions: Vec<Vec<ListTxn>>,
}

impl ListHistory {
    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.sessions.iter().map(Vec::len).sum()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Why a list history was rejected.
#[derive(Debug)]
pub enum ListViolation {
    /// Two observed lists for one key are not prefix-ordered — there is no
    /// single version order (Elle's "incompatible orders").
    IncompatibleOrders {
        /// The key with conflicting observations.
        key: Key,
    },
    /// A read observed a value never appended by a committed transaction.
    PhantomValue {
        /// The key read.
        key: Key,
        /// The unexplained value.
        value: Value,
    },
    /// Two transactions appended the same value to the same key.
    DuplicateAppend {
        /// The key appended.
        key: Key,
        /// The duplicated value.
        value: Value,
    },
    /// The fully-known dependency graph contains a violating cycle.
    Cyclic {
        /// The violating cycle.
        cycle: Vec<Edge>,
        /// Its anomaly classification.
        anomaly: Anomaly,
    },
}

/// Result of checking a list history.
pub struct ListReport {
    /// `None` means the history satisfies SI.
    pub violation: Option<ListViolation>,
    /// Wall-clock checking time.
    pub elapsed: Duration,
}

impl ListReport {
    /// Whether the history was accepted.
    pub fn is_si(&self) -> bool {
        self.violation.is_none()
    }
}

/// Check a list-append history against snapshot isolation.
pub fn check_si_list(h: &ListHistory) -> ListReport {
    let t0 = Instant::now();
    let violation = run(h).err();
    ListReport { violation, elapsed: t0.elapsed() }
}

fn run(h: &ListHistory) -> Result<(), ListViolation> {
    // Dense ids, session-major.
    let mut txns: Vec<&ListTxn> = Vec::new();
    let mut so_edges: Vec<(TxnId, TxnId)> = Vec::new();
    for sess in &h.sessions {
        let start = txns.len();
        for (i, t) in sess.iter().enumerate() {
            txns.push(t);
            if i > 0 {
                so_edges.push((TxnId((start + i - 1) as u32), TxnId((start + i) as u32)));
            }
        }
    }
    let n = txns.len();

    // Appender maps (committed appends only).
    let mut appender: HashMap<(Key, Value), TxnId> = HashMap::new();
    for (i, t) in txns.iter().enumerate() {
        if t.status != TxnStatus::Committed {
            continue;
        }
        for op in &t.ops {
            if let ListOp::Append { key, value } = *op {
                if appender.insert((key, value), TxnId(i as u32)).is_some() {
                    return Err(ListViolation::DuplicateAppend { key, value });
                }
            }
        }
    }

    // Longest observed list per key; verify prefix-compatibility.
    let mut longest: HashMap<Key, Vec<Value>> = HashMap::new();
    for t in &txns {
        if t.status != TxnStatus::Committed {
            continue;
        }
        for op in &t.ops {
            if let ListOp::Read { key, list } = op {
                let best = longest.entry(*key).or_default();
                let (short, long) = if list.len() <= best.len() {
                    (&list[..], &best[..])
                } else {
                    (&best[..], &list[..])
                };
                if short != &long[..short.len()] {
                    return Err(ListViolation::IncompatibleOrders { key: *key });
                }
                if list.len() > best.len() {
                    *best = list.clone();
                }
            }
        }
    }

    // Per-key orders. The longest observed list fixes the order of every
    // *observed* value; appends nobody observed necessarily come after the
    // whole observed prefix (lists are append-only, so a value preceding an
    // observed one would have been observed too), but their order *among
    // themselves* is genuinely unknown — it becomes a constraint for the
    // solver, exactly like a register-history version order.
    let mut observed: HashMap<Key, Vec<TxnId>> = HashMap::new();
    let mut value_pos: HashMap<(Key, Value), usize> = HashMap::new();
    for (key, list) in &longest {
        let mut ws = Vec::with_capacity(list.len());
        for &v in list {
            let Some(&w) = appender.get(&(*key, v)) else {
                return Err(ListViolation::PhantomValue { key: *key, value: v });
            };
            value_pos.insert((*key, v), ws.len());
            ws.push(w);
        }
        observed.insert(*key, ws);
    }
    let mut unobserved: HashMap<Key, Vec<TxnId>> = HashMap::new();
    for (&(key, value), &w) in &appender {
        if !value_pos.contains_key(&(key, value)) {
            let slot = unobserved.entry(key).or_default();
            if !slot.contains(&w) {
                slot.push(w);
            }
        }
    }
    for ws in unobserved.values_mut() {
        ws.sort_unstable();
    }

    // Known edges.
    let mut edges: Vec<Edge> = Vec::new();
    for (a, b) in so_edges {
        edges.push(Edge::new(a, b, Label::So));
    }
    for (key, ws) in &observed {
        for w in ws.windows(2) {
            if w[0] != w[1] {
                edges.push(Edge::new(w[0], w[1], Label::Ww(*key)));
            }
        }
        // Every unobserved appender comes after the observed prefix.
        if let Some(&last) = ws.last() {
            for &u in unobserved.get(key).map(Vec::as_slice).unwrap_or(&[]) {
                if u != last {
                    edges.push(Edge::new(last, u, Label::Ww(*key)));
                }
            }
        }
    }
    for (i, t) in txns.iter().enumerate() {
        if t.status != TxnStatus::Committed {
            continue;
        }
        let reader = TxnId(i as u32);
        // Only the first (external) read of each key creates edges; later
        // reads repeat information.
        let mut seen: HashMap<Key, ()> = HashMap::new();
        for op in &t.ops {
            let ListOp::Read { key, list } = op else { continue };
            if seen.insert(*key, ()).is_some() {
                continue;
            }
            let obs = observed.get(key).map(Vec::as_slice).unwrap_or(&[]);
            let unobs = unobserved.get(key).map(Vec::as_slice).unwrap_or(&[]);
            if let Some(&last) = list.last() {
                let pos = value_pos[&(*key, last)];
                let w = obs[pos];
                if w != reader {
                    edges.push(Edge::new(w, reader, Label::Wr(*key)));
                }
                if let Some(&next) = obs.get(pos + 1) {
                    // Overwritten by the next observed append.
                    if next != reader {
                        edges.push(Edge::new(reader, next, Label::Rw(*key)));
                    }
                } else {
                    // Read the full observed prefix: anti-depends on every
                    // unobserved append (their first is unknown).
                    for &u in unobs {
                        if u != reader {
                            edges.push(Edge::new(reader, u, Label::Rw(*key)));
                        }
                    }
                }
            } else if let Some(&first) = obs.first() {
                // Empty read: anti-depends on the first appender.
                if first != reader {
                    edges.push(Edge::new(reader, first, Label::Rw(*key)));
                }
            } else {
                // Empty read with no observed appends at all: every append
                // (necessarily unobserved) overwrote it.
                for &u in unobs {
                    if u != reader {
                        edges.push(Edge::new(reader, u, Label::Rw(*key)));
                    }
                }
            }
        }
    }

    // Constraints: mutual orders of unobserved appenders per key.
    let mut constraints: Vec<Constraint> = Vec::new();
    for (&key, ws) in &unobserved {
        for (i, &t) in ws.iter().enumerate() {
            for &s2 in &ws[i + 1..] {
                constraints.push(Constraint {
                    key,
                    either: vec![Edge::new(t, s2, Label::Ww(key))],
                    or: vec![Edge::new(s2, t, Label::Ww(key))],
                });
            }
        }
    }

    if let KnownGraphResult::Cyclic(cycle) = KnownGraph::build(n, &edges) {
        let anomaly = Anomaly::classify(&cycle);
        return Err(ListViolation::Cyclic { cycle, anomaly });
    }
    if constraints.is_empty() {
        return Ok(());
    }
    // Residual solving: selector per unobserved pair on the layered graph.
    let mut solver = Solver::with_graph(2 * n);
    for e in &edges {
        let (f, t) = (e.from.0, e.to.0);
        if e.label.is_dep() {
            solver.add_known_edge(f, t);
            solver.add_known_edge(f, n as u32 + t);
        } else {
            solver.add_known_edge(n as u32 + f, t);
        }
    }
    for cons in &constraints {
        let var = solver.new_var();
        let sel = Lit::pos(var);
        // Seed the phase toward the `either` side (ascending transaction
        // ids): a consistent per-key total order, so the first assignment
        // is near-acyclic.
        solver.set_phase(var, true);
        for (guard, side) in [(sel, &cons.either), (!sel, &cons.or)] {
            for e in side {
                let (f, t) = (e.from.0, e.to.0);
                solver.add_symbolic_edge(guard, f, t);
                solver.add_symbolic_edge(guard, f, n as u32 + t);
            }
        }
    }
    match solver.solve() {
        SolveResult::Sat(_) => Ok(()),
        SolveResult::Unsat | SolveResult::Unknown => {
            // Every resolution is cyclic; materialize one for the witness.
            let mut all = edges;
            for cons in &constraints {
                all.extend(cons.either.iter().copied());
            }
            match KnownGraph::build(n, &all) {
                KnownGraphResult::Cyclic(cycle) => {
                    let anomaly = Anomaly::classify(&cycle);
                    Err(ListViolation::Cyclic { cycle, anomaly })
                }
                KnownGraphResult::Acyclic(_) => {
                    unreachable!("UNSAT list instance must be cyclic under a uniform resolution")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(n: u64) -> Key {
        Key(n)
    }
    fn v(n: u64) -> Value {
        Value(n)
    }
    fn append(key: Key, value: Value) -> ListOp {
        ListOp::Append { key, value }
    }
    fn read(key: Key, list: &[u64]) -> ListOp {
        ListOp::Read { key, list: list.iter().map(|&x| Value(x)).collect() }
    }
    fn txn(ops: Vec<ListOp>) -> ListTxn {
        ListTxn { ops, status: TxnStatus::Committed }
    }

    #[test]
    fn serial_appends_accepted() {
        let h = ListHistory {
            sessions: vec![vec![
                txn(vec![append(k(1), v(1))]),
                txn(vec![read(k(1), &[1]), append(k(1), v(2))]),
                txn(vec![read(k(1), &[1, 2])]),
            ]],
        };
        assert!(check_si_list(&h).is_si());
    }

    #[test]
    fn incompatible_orders_rejected() {
        let h = ListHistory {
            sessions: vec![
                vec![txn(vec![append(k(1), v(1))])],
                vec![txn(vec![append(k(1), v(2))])],
                vec![txn(vec![read(k(1), &[1, 2])])],
                vec![txn(vec![read(k(1), &[2, 1])])],
            ],
        };
        match check_si_list(&h).violation {
            Some(ListViolation::IncompatibleOrders { key }) => assert_eq!(key, k(1)),
            other => panic!("expected incompatible orders, got {other:?}"),
        }
    }

    #[test]
    fn phantom_value_rejected() {
        let h = ListHistory { sessions: vec![vec![txn(vec![read(k(1), &[9])])]] };
        assert!(matches!(check_si_list(&h).violation, Some(ListViolation::PhantomValue { .. })));
    }

    #[test]
    fn duplicate_append_rejected() {
        let h = ListHistory {
            sessions: vec![
                vec![txn(vec![append(k(1), v(1))])],
                vec![txn(vec![append(k(1), v(1))])],
            ],
        };
        assert!(matches!(check_si_list(&h).violation, Some(ListViolation::DuplicateAppend { .. })));
    }

    #[test]
    fn lost_update_on_lists_rejected() {
        // Both sessions read [1] and append: the version order is exposed by
        // a later read [1,2,3], and each updater missed the other.
        let h = ListHistory {
            sessions: vec![
                vec![txn(vec![append(k(1), v(1))])],
                vec![txn(vec![read(k(1), &[1]), append(k(1), v(2))])],
                vec![txn(vec![read(k(1), &[1]), append(k(1), v(3))])],
                vec![txn(vec![read(k(1), &[1, 2, 3])])],
            ],
        };
        match check_si_list(&h).violation {
            Some(ListViolation::Cyclic { anomaly, .. }) => {
                assert_eq!(anomaly, Anomaly::LostUpdate);
            }
            other => panic!("expected cyclic violation, got {other:?}"),
        }
    }

    #[test]
    fn long_fork_on_lists_rejected() {
        let h = ListHistory {
            sessions: vec![
                vec![txn(vec![append(k(1), v(1))])],
                vec![txn(vec![append(k(2), v(2))])],
                vec![txn(vec![read(k(1), &[1]), read(k(2), &[])])],
                vec![txn(vec![read(k(1), &[]), read(k(2), &[2])])],
            ],
        };
        match check_si_list(&h).violation {
            Some(ListViolation::Cyclic { anomaly, .. }) => assert_eq!(anomaly, Anomaly::LongFork),
            other => panic!("expected cyclic violation, got {other:?}"),
        }
    }

    #[test]
    fn write_skew_on_lists_accepted() {
        let h = ListHistory {
            sessions: vec![
                vec![txn(vec![append(k(1), v(1))]), txn(vec![append(k(2), v(2))])],
                vec![txn(vec![read(k(1), &[1]), append(k(2), v(22))])],
                vec![txn(vec![read(k(2), &[2]), append(k(1), v(11))])],
            ],
        };
        assert!(check_si_list(&h).is_si());
    }

    #[test]
    fn aborted_appends_invisible() {
        let h = ListHistory {
            sessions: vec![
                vec![ListTxn { ops: vec![append(k(1), v(1))], status: TxnStatus::Aborted }],
                vec![txn(vec![read(k(1), &[])])],
            ],
        };
        assert!(check_si_list(&h).is_si());
        // Reading the aborted value is a phantom.
        let h2 = ListHistory {
            sessions: vec![
                vec![ListTxn { ops: vec![append(k(1), v(1))], status: TxnStatus::Aborted }],
                vec![txn(vec![read(k(1), &[1])])],
            ],
        };
        assert!(matches!(check_si_list(&h2).violation, Some(ListViolation::PhantomValue { .. })));
    }

    #[test]
    fn unobserved_appends_do_not_block_acceptance() {
        let h = ListHistory {
            sessions: vec![
                vec![txn(vec![append(k(1), v(1))])],
                vec![txn(vec![append(k(1), v(2))])],
                vec![txn(vec![read(k(1), &[1])])],
            ],
        };
        assert!(check_si_list(&h).is_si());
    }
}
