//! The `CheckSI` entry point and report types (Algorithm 1/2 of the
//! paper): axioms → construction → pruning → encoding → solving, with
//! per-stage timing for the decomposition analysis (Section 5.4.2).
//!
//! The pipeline itself lives in the staged [`crate::engine::CheckEngine`];
//! [`check_si`] is a thin compatibility wrapper that runs the engine at
//! [`crate::engine::IsolationLevel::Si`] with sharding off: same options,
//! same verdicts. (Internals may differ from the pre-engine pipeline — the
//! worklist prune can leave more constraints to the solver than the old
//! full fixpoint, shifting `prune_stats`/`encode_stats` and occasionally
//! the extracted witness cycle; verdicts are unaffected, as the property
//! suite and conformance harness assert.)

use crate::anomaly::Anomaly;
use crate::engine::{CheckEngine, EngineOptions, IsolationLevel, ShardStats};
use crate::interpret::Scenario;
use polysi_history::{AxiomViolation, History};
use polysi_polygraph::{ConstraintMode, Edge, OracleKind, PruneStats};
use polysi_solver::SolverStats;
use std::time::Duration;

/// Configuration of a check run. The defaults are the full PolySI
/// configuration; the differential variants of Section 5.4.3 disable
/// pruning (`PolySI w/o P`) and constraint compaction (`PolySI w/o C+P`).
#[derive(Clone, Copy, Debug)]
pub struct CheckOptions {
    /// Constraint representation (generalized vs. plain).
    pub mode: ConstraintMode,
    /// Run constraint pruning before encoding.
    pub pruning: bool,
    /// Run the interpretation algorithm on violations to recover a minimal
    /// explained scenario.
    pub interpret: bool,
    /// Seed solver decision phases along a topological order of the known
    /// graph (this implementation's ablatable optimization — see the
    /// `ablation` bench binary).
    pub phase_seeding: bool,
    /// Reachability-oracle representation ([`OracleKind`]); verdicts and
    /// witnesses are identical for any setting, `Auto` picks per run.
    pub reach_oracle: OracleKind,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            mode: ConstraintMode::Generalized,
            pruning: true,
            interpret: true,
            phase_seeding: true,
            reach_oracle: OracleKind::Auto,
        }
    }
}

impl CheckOptions {
    /// `PolySI w/o P`: generalized constraints, no pruning.
    pub fn without_pruning() -> Self {
        CheckOptions { pruning: false, ..Default::default() }
    }

    /// `PolySI w/o C+P`: plain constraints, no pruning.
    pub fn without_compaction_and_pruning() -> Self {
        CheckOptions { mode: ConstraintMode::Plain, pruning: false, ..Default::default() }
    }
}

/// Wall-clock duration of each pipeline stage (Figure 9). For sharded runs
/// these are summed across components (CPU time, not wall-clock — the
/// components run concurrently).
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Axiom checks + polygraph construction.
    pub constructing: Duration,
    /// Constraint pruning.
    pub pruning: Duration,
    /// SAT encoding.
    pub encoding: Duration,
    /// Solver run (including counterexample extraction on violation).
    pub solving: Duration,
}

impl StageTimings {
    /// Total checking time.
    pub fn total(&self) -> Duration {
        self.constructing + self.pruning + self.encoding + self.solving
    }
}

/// Size of the encoded SAT instance.
#[derive(Clone, Copy, Debug, Default)]
pub struct EncodeStats {
    /// Boolean variables created (one selector per constraint).
    pub vars: usize,
    /// Clauses added.
    pub clauses: usize,
    /// Unconditional theory edges.
    pub known_edges: usize,
    /// Guard-conditional theory edges.
    pub symbolic_edges: usize,
}

/// The verdict of a check.
pub enum Outcome {
    /// The history satisfies the checked isolation level (named for the
    /// original SI-only pipeline; [`CheckReport::accepted`] reads better
    /// for SER runs).
    Si,
    /// A non-cyclic axiom failed (`Int`, aborted read, intermediate read,
    /// UniqueValue, …); the history violates the level and graph analysis
    /// was skipped.
    AxiomViolations(Vec<AxiomViolation>),
    /// A cyclic violation with its witness.
    CyclicViolation(Violation),
}

impl Outcome {
    /// Stable machine-readable kind, used by span attributes and the
    /// `--report json` schema: `ok` / `axiom_violation` / `cyclic_violation`.
    pub fn kind(&self) -> &'static str {
        match self {
            Outcome::Si => "ok",
            Outcome::AxiomViolations(_) => "axiom_violation",
            Outcome::CyclicViolation(_) => "cyclic_violation",
        }
    }
}

/// A cyclic isolation violation.
pub struct Violation {
    /// The violating cycle: typed dependency edges. Under SI no two `RW`
    /// edges are adjacent (so the cycle survives the `(Dep);RW?` induce
    /// rule of Theorem 6); under SER any dependency cycle violates.
    pub cycle: Vec<Edge>,
    /// Heuristic anomaly classification of the cycle.
    pub anomaly: Anomaly,
    /// The interpreted scenario (restored participants, resolved
    /// uncertainties, minimal finalized cause), when interpretation ran.
    pub scenario: Option<Scenario>,
}

/// Everything a check run produces.
pub struct CheckReport {
    /// The verdict.
    pub outcome: Outcome,
    /// Per-stage times (summed across shards on sharded runs).
    pub timings: StageTimings,
    /// Pruning counters (Table 3), when pruning ran and completed; merged
    /// across shards on sharded runs.
    pub prune_stats: Option<PruneStats>,
    /// Encoded instance size.
    pub encode_stats: EncodeStats,
    /// Solver counters, when the solver ran (summed over cubes/workers on
    /// parallel solves).
    pub solver_stats: Option<SolverStats>,
    /// Solve-stage strategy counters (mode, units, winner), when the
    /// solve stage ran; merged across shards on sharded runs.
    pub solve_stats: Option<crate::solve::SolveStats>,
    /// Sharding decision, when the engine ran with `Sharding::Auto`.
    pub shard_stats: Option<ShardStats>,
    /// Reachability-oracle representation the run was configured with
    /// (`Auto` resolves per component at build time).
    pub reach_oracle: OracleKind,
}

impl CheckReport {
    /// Whether the history was accepted as SI (historical name; for SER
    /// runs prefer [`CheckReport::accepted`]).
    pub fn is_si(&self) -> bool {
        matches!(self.outcome, Outcome::Si)
    }

    /// Whether the history satisfies the checked isolation level.
    pub fn accepted(&self) -> bool {
        self.is_si()
    }
}

/// Check a history against (strong session) snapshot isolation.
///
/// Sound and complete (Theorems 18/19): returns a violation iff the history
/// does not satisfy SI, assuming determinate transactions.
///
/// Compatibility wrapper over the staged engine: identical to
/// `engine::check(h, IsolationLevel::Si, …)` with sharding off (see the
/// module docs for the internals that may differ from the pre-engine
/// pipeline).
pub fn check_si(h: &History, opts: &CheckOptions) -> CheckReport {
    CheckEngine::new(IsolationLevel::Si, EngineOptions::from(opts)).check(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysi_history::{HistoryBuilder, Key, Value};

    fn k(n: u64) -> Key {
        Key(n)
    }
    fn v(n: u64) -> Value {
        Value(n)
    }

    fn check(h: &History) -> CheckReport {
        check_si(h, &CheckOptions::default())
    }

    #[test]
    fn empty_history_is_si() {
        assert!(check(&History::new()).is_si());
    }

    #[test]
    fn serial_history_is_si() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).commit();
        b.begin().read(k(1), v(1)).write(k(1), v(2)).commit();
        b.begin().read(k(1), v(2)).commit();
        assert!(check(&b.build()).is_si());
    }

    #[test]
    fn lost_update_rejected() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(1), v(2)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(1), v(3)).commit();
        let report = check(&b.build());
        match &report.outcome {
            Outcome::CyclicViolation(viol) => {
                assert_eq!(viol.anomaly, Anomaly::LostUpdate);
                assert!(!viol.cycle.is_empty());
            }
            _ => panic!("lost update must be rejected"),
        }
    }

    #[test]
    fn long_fork_rejected() {
        // Paper Figure 3: T3 sees x=1,y=0; T4 sees x=0,y=1.
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(10)).write(k(2), v(20)).commit(); // T0
        b.begin().write(k(1), v(12)).commit(); // T5
        b.session();
        b.begin().write(k(1), v(11)).commit(); // T1
        b.session();
        b.begin().write(k(2), v(21)).commit(); // T2
        b.session();
        b.begin().read(k(1), v(11)).read(k(2), v(20)).commit(); // T3
        b.session();
        b.begin().read(k(1), v(10)).read(k(2), v(21)).commit(); // T4
        let report = check(&b.build());
        match &report.outcome {
            Outcome::CyclicViolation(viol) => {
                assert_eq!(viol.anomaly, Anomaly::LongFork, "cycle: {:?}", viol.cycle);
            }
            _ => panic!("long fork must be rejected"),
        }
    }

    #[test]
    fn write_skew_accepted() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).write(k(2), v(2)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(2), v(22)).commit();
        b.session();
        b.begin().read(k(2), v(2)).write(k(1), v(11)).commit();
        assert!(check(&b.build()).is_si(), "write skew is allowed under SI");
    }

    #[test]
    fn causality_violation_rejected() {
        // Session order forces T0 before T1, but T2 reads T1's write and
        // then (same session) an older value of the key T0 wrote.
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).commit(); // T0
        b.begin().write(k(2), v(2)).commit(); // T1
        b.session();
        b.begin().read(k(2), v(2)).read(k(1), Value::INIT).commit(); // T2
        let report = check(&b.build());
        match &report.outcome {
            Outcome::CyclicViolation(viol) => {
                assert_eq!(viol.anomaly, Anomaly::CausalityViolation, "cycle: {:?}", viol.cycle);
            }
            _ => panic!("causality violation must be rejected"),
        }
    }

    #[test]
    fn aborted_read_rejected_without_graph_analysis() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).abort();
        b.session();
        b.begin().read(k(1), v(1)).commit();
        let report = check(&b.build());
        match &report.outcome {
            Outcome::AxiomViolations(vs) => {
                assert!(matches!(vs[0], AxiomViolation::AbortedRead { .. }));
            }
            _ => panic!("aborted read must fail the axioms"),
        }
    }

    #[test]
    fn read_committed_prefix_is_si() {
        // Two sessions ping-ponging reads of each other's committed writes
        // in a consistent order.
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).commit();
        b.begin().read(k(2), v(2)).commit();
        b.session();
        b.begin().write(k(2), v(2)).commit();
        b.begin().read(k(1), v(1)).commit();
        assert!(check(&b.build()).is_si());
    }

    #[test]
    fn variants_agree_on_verdicts() {
        let build = || {
            let mut b = HistoryBuilder::new();
            b.session();
            b.begin().write(k(1), v(1)).commit();
            b.session();
            b.begin().read(k(1), v(1)).write(k(1), v(2)).commit();
            b.session();
            b.begin().read(k(1), v(1)).write(k(1), v(3)).commit();
            b.build()
        };
        let h = build();
        let full = check_si(&h, &CheckOptions::default());
        let no_p = check_si(&h, &CheckOptions::without_pruning());
        let no_cp = check_si(&h, &CheckOptions::without_compaction_and_pruning());
        assert!(!full.is_si() && !no_p.is_si() && !no_cp.is_si());
    }

    #[test]
    fn report_carries_stage_metadata() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(1), v(2)).commit();
        b.session();
        b.begin().read(k(1), v(2)).write(k(1), v(4)).commit();
        let report = check(&b.build());
        assert!(report.is_si());
        assert!(report.prune_stats.is_some());
        assert!(report.timings.total() > Duration::ZERO);
        assert!(report.shard_stats.is_none(), "check_si never shards");
    }

    #[test]
    fn repeated_lost_update_pairs_all_detected() {
        // Several independent lost-update pairs on distinct keys: still
        // rejected, and the cycle stays on a single key.
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).write(k(2), v(2)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(1), v(11)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(1), v(12)).commit();
        let report = check(&b.build());
        assert!(!report.is_si());
    }
}
