//! The `CheckSI` pipeline (Algorithm 1/2 of the paper): axioms →
//! construction → pruning → encoding → solving, with per-stage timing for
//! the decomposition analysis (Section 5.4.2).

use crate::anomaly::Anomaly;
use crate::interpret::{interpret, Scenario};
use polysi_history::{AxiomViolation, Facts, History};
use polysi_polygraph::{
    ConstraintMode, Edge, KnownGraphResult, Polygraph, PruneResult, PruneStats,
};
use polysi_solver::{Lit, SolveResult, Solver, SolverStats};
use std::time::{Duration, Instant};

/// Configuration of a check run. The defaults are the full PolySI
/// configuration; the differential variants of Section 5.4.3 disable
/// pruning (`PolySI w/o P`) and constraint compaction (`PolySI w/o C+P`).
#[derive(Clone, Copy, Debug)]
pub struct CheckOptions {
    /// Constraint representation (generalized vs. plain).
    pub mode: ConstraintMode,
    /// Run constraint pruning before encoding.
    pub pruning: bool,
    /// Run the interpretation algorithm on violations to recover a minimal
    /// explained scenario.
    pub interpret: bool,
    /// Seed solver decision phases along a topological order of the known
    /// graph (this implementation's ablatable optimization — see the
    /// `ablation` bench binary).
    pub phase_seeding: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            mode: ConstraintMode::Generalized,
            pruning: true,
            interpret: true,
            phase_seeding: true,
        }
    }
}

impl CheckOptions {
    /// `PolySI w/o P`: generalized constraints, no pruning.
    pub fn without_pruning() -> Self {
        CheckOptions { pruning: false, ..Default::default() }
    }

    /// `PolySI w/o C+P`: plain constraints, no pruning.
    pub fn without_compaction_and_pruning() -> Self {
        CheckOptions { mode: ConstraintMode::Plain, pruning: false, ..Default::default() }
    }
}

/// Wall-clock duration of each pipeline stage (Figure 9).
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Axiom checks + polygraph construction.
    pub constructing: Duration,
    /// Constraint pruning.
    pub pruning: Duration,
    /// SAT encoding.
    pub encoding: Duration,
    /// Solver run (including counterexample extraction on violation).
    pub solving: Duration,
}

impl StageTimings {
    /// Total checking time.
    pub fn total(&self) -> Duration {
        self.constructing + self.pruning + self.encoding + self.solving
    }
}

/// Size of the encoded SAT instance.
#[derive(Clone, Copy, Debug, Default)]
pub struct EncodeStats {
    /// Boolean variables created (one selector per constraint).
    pub vars: usize,
    /// Clauses added.
    pub clauses: usize,
    /// Unconditional layered theory edges.
    pub known_edges: usize,
    /// Guard-conditional layered theory edges.
    pub symbolic_edges: usize,
}

/// The verdict of a check.
pub enum Outcome {
    /// The history satisfies snapshot isolation.
    Si,
    /// A non-cyclic axiom failed (`Int`, aborted read, intermediate read,
    /// UniqueValue, …); the history is not SI and graph analysis was
    /// skipped.
    AxiomViolations(Vec<AxiomViolation>),
    /// A cyclic violation with its witness.
    CyclicViolation(Violation),
}

/// A cyclic SI violation.
pub struct Violation {
    /// The violating cycle: typed dependency edges in which no two `RW`
    /// edges are adjacent (so the cycle survives the `(Dep);RW?` induce
    /// rule of Theorem 6).
    pub cycle: Vec<Edge>,
    /// Heuristic anomaly classification of the cycle.
    pub anomaly: Anomaly,
    /// The interpreted scenario (restored participants, resolved
    /// uncertainties, minimal finalized cause), when interpretation ran.
    pub scenario: Option<Scenario>,
}

/// Everything a check run produces.
pub struct CheckReport {
    /// The verdict.
    pub outcome: Outcome,
    /// Per-stage wall-clock times.
    pub timings: StageTimings,
    /// Pruning counters (Table 3), when pruning ran and completed.
    pub prune_stats: Option<PruneStats>,
    /// Encoded instance size.
    pub encode_stats: EncodeStats,
    /// Solver counters, when the solver ran.
    pub solver_stats: Option<SolverStats>,
}

impl CheckReport {
    /// Whether the history was accepted as SI.
    pub fn is_si(&self) -> bool {
        matches!(self.outcome, Outcome::Si)
    }
}

/// Check a history against (strong session) snapshot isolation.
///
/// Sound and complete (Theorems 18/19): returns a violation iff the history
/// does not satisfy SI, assuming determinate transactions.
pub fn check_si(h: &History, opts: &CheckOptions) -> CheckReport {
    let mut timings = StageTimings::default();
    let t0 = Instant::now();

    // Stage 0: non-cyclic axioms (Section 4.5).
    let facts = Facts::analyze(h);
    if !facts.axioms_ok() {
        timings.constructing = t0.elapsed();
        return CheckReport {
            outcome: Outcome::AxiomViolations(facts.violations),
            timings,
            prune_stats: None,
            encode_stats: EncodeStats::default(),
            solver_stats: None,
        };
    }

    // Stage 1: construct the generalized polygraph.
    let mut g = Polygraph::from_history(h, &facts, opts.mode);
    timings.constructing = t0.elapsed();

    // Stage 2: prune constraints.
    let mut prune_stats = None;
    if opts.pruning {
        let t = Instant::now();
        let pr = g.prune();
        timings.pruning = t.elapsed();
        match pr {
            PruneResult::Pruned(stats) => prune_stats = Some(stats),
            PruneResult::Violation(cycle) => {
                return violation_report(
                    h,
                    &facts,
                    cycle,
                    opts,
                    timings,
                    None,
                    EncodeStats::default(),
                    None,
                );
            }
        }
    }

    // Stage 3: encode into SAT modulo acyclicity. Selector phases are
    // seeded from a topological order of the known graph so the solver's
    // first full assignment is already near-acyclic.
    let t = Instant::now();
    let n = g.n;
    let topo: Option<Vec<u32>> = if opts.phase_seeding {
        match g.known_graph() {
            KnownGraphResult::Acyclic(kg) => Some(kg.topo_positions()),
            KnownGraphResult::Cyclic(_) => None, // solver will report Unsat
        }
    } else {
        None
    };
    let mut solver = Solver::with_graph(2 * n);
    let mut encode_stats = EncodeStats::default();
    for e in &g.known {
        add_layered_known(&mut solver, n, e);
        encode_stats.known_edges += layered_count(e);
    }
    for cons in &g.constraints {
        let var = solver.new_var();
        let s = Lit::pos(var);
        encode_stats.vars += 1;
        if let Some(topo) = &topo {
            solver.set_phase(var, phase_along_topo(topo, cons));
        }
        for e in &cons.either {
            add_layered_symbolic(&mut solver, n, s, e);
            encode_stats.symbolic_edges += layered_count(e);
        }
        for e in &cons.or {
            add_layered_symbolic(&mut solver, n, !s, e);
            encode_stats.symbolic_edges += layered_count(e);
        }
    }
    timings.encoding = t.elapsed();

    // Stage 4: solve.
    let t = Instant::now();
    let result = solver.solve();
    let solver_stats = Some(*solver.stats());
    match result {
        SolveResult::Sat(_) => {
            timings.solving = t.elapsed();
            CheckReport { outcome: Outcome::Si, timings, prune_stats, encode_stats, solver_stats }
        }
        SolveResult::Unsat => {
            let cycle = extract_cycle(&g);
            timings.solving = t.elapsed();
            violation_report(
                h,
                &facts,
                cycle,
                opts,
                timings,
                prune_stats,
                encode_stats,
                solver_stats,
            )
        }
        SolveResult::Unknown => unreachable!("check_si sets no conflict budget"),
    }
}

#[allow(clippy::too_many_arguments)]
fn violation_report(
    h: &History,
    facts: &Facts,
    cycle: Vec<Edge>,
    opts: &CheckOptions,
    timings: StageTimings,
    prune_stats: Option<PruneStats>,
    encode_stats: EncodeStats,
    solver_stats: Option<SolverStats>,
) -> CheckReport {
    let scenario = opts.interpret.then(|| interpret(h, facts, &cycle));
    let anomaly = Anomaly::classify(&cycle);
    CheckReport {
        outcome: Outcome::CyclicViolation(Violation { cycle, anomaly, scenario }),
        timings,
        prune_stats,
        encode_stats,
        solver_stats,
    }
}

/// On UNSAT, every resolution of the constraints is cyclic (Definition 15),
/// so resolving everything one way and extracting a cycle yields a genuine
/// counterexample. We try both uniform resolutions and keep the shorter
/// cycle.
fn extract_cycle(g: &Polygraph) -> Vec<Edge> {
    let mut best: Option<Vec<Edge>> = None;
    for either in [true, false] {
        let mut edges = g.known.clone();
        for c in &g.constraints {
            let side = if either { &c.either } else { &c.or };
            edges.extend(side.iter().copied());
        }
        if let KnownGraphResult::Cyclic(cycle) = polysi_polygraph::KnownGraph::build(g.n, &edges) {
            if best.as_ref().is_none_or(|b| cycle.len() < b.len()) {
                best = Some(cycle);
            }
        }
    }
    best.expect("UNSAT instance must be cyclic under a uniform resolution")
}

/// Prefer the constraint side whose `WW` edges agree with the known
/// topological order.
fn phase_along_topo(topo: &[u32], cons: &polysi_polygraph::Constraint) -> bool {
    let agreement = |side: &[Edge]| -> i64 {
        side.iter()
            .filter(|e| matches!(e.label, polysi_polygraph::Label::Ww(_)))
            .map(|e| if topo[e.from.idx()] < topo[e.to.idx()] { 1i64 } else { -1 })
            .sum()
    };
    agreement(&cons.either) >= agreement(&cons.or)
}

#[inline]
fn layered_count(e: &Edge) -> usize {
    if e.label.is_dep() {
        2
    } else {
        1
    }
}

/// Add a known edge's layered images (see `polysi_polygraph::KnownGraph`):
/// `Dep i→k` becomes `B(i)→B(k)` and `B(i)→M(k)`; `RW k→j` becomes
/// `M(k)→B(j)`.
fn add_layered_known(solver: &mut Solver, n: usize, e: &Edge) {
    let (f, t) = (e.from.0, e.to.0);
    if e.label.is_dep() {
        solver.add_known_edge(f, t);
        solver.add_known_edge(f, n as u32 + t);
    } else {
        solver.add_known_edge(n as u32 + f, t);
    }
}

fn add_layered_symbolic(solver: &mut Solver, n: usize, guard: Lit, e: &Edge) {
    let (f, t) = (e.from.0, e.to.0);
    if e.label.is_dep() {
        solver.add_symbolic_edge(guard, f, t);
        solver.add_symbolic_edge(guard, f, n as u32 + t);
    } else {
        solver.add_symbolic_edge(guard, n as u32 + f, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysi_history::{HistoryBuilder, Key, Value};

    fn k(n: u64) -> Key {
        Key(n)
    }
    fn v(n: u64) -> Value {
        Value(n)
    }

    fn check(h: &History) -> CheckReport {
        check_si(h, &CheckOptions::default())
    }

    #[test]
    fn empty_history_is_si() {
        assert!(check(&History::new()).is_si());
    }

    #[test]
    fn serial_history_is_si() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).commit();
        b.begin().read(k(1), v(1)).write(k(1), v(2)).commit();
        b.begin().read(k(1), v(2)).commit();
        assert!(check(&b.build()).is_si());
    }

    #[test]
    fn lost_update_rejected() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(1), v(2)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(1), v(3)).commit();
        let report = check(&b.build());
        match &report.outcome {
            Outcome::CyclicViolation(viol) => {
                assert_eq!(viol.anomaly, Anomaly::LostUpdate);
                assert!(!viol.cycle.is_empty());
            }
            _ => panic!("lost update must be rejected"),
        }
    }

    #[test]
    fn long_fork_rejected() {
        // Paper Figure 3: T3 sees x=1,y=0; T4 sees x=0,y=1.
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(10)).write(k(2), v(20)).commit(); // T0
        b.begin().write(k(1), v(12)).commit(); // T5
        b.session();
        b.begin().write(k(1), v(11)).commit(); // T1
        b.session();
        b.begin().write(k(2), v(21)).commit(); // T2
        b.session();
        b.begin().read(k(1), v(11)).read(k(2), v(20)).commit(); // T3
        b.session();
        b.begin().read(k(1), v(10)).read(k(2), v(21)).commit(); // T4
        let report = check(&b.build());
        match &report.outcome {
            Outcome::CyclicViolation(viol) => {
                assert_eq!(viol.anomaly, Anomaly::LongFork, "cycle: {:?}", viol.cycle);
            }
            _ => panic!("long fork must be rejected"),
        }
    }

    #[test]
    fn write_skew_accepted() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).write(k(2), v(2)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(2), v(22)).commit();
        b.session();
        b.begin().read(k(2), v(2)).write(k(1), v(11)).commit();
        assert!(check(&b.build()).is_si(), "write skew is allowed under SI");
    }

    #[test]
    fn causality_violation_rejected() {
        // Session order forces T0 before T1, but T2 reads T1's write and
        // then (same session) an older value of the key T0 wrote.
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).commit(); // T0
        b.begin().write(k(2), v(2)).commit(); // T1
        b.session();
        b.begin().read(k(2), v(2)).read(k(1), Value::INIT).commit(); // T2
        let report = check(&b.build());
        match &report.outcome {
            Outcome::CyclicViolation(viol) => {
                assert_eq!(viol.anomaly, Anomaly::CausalityViolation, "cycle: {:?}", viol.cycle);
            }
            _ => panic!("causality violation must be rejected"),
        }
    }

    #[test]
    fn aborted_read_rejected_without_graph_analysis() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).abort();
        b.session();
        b.begin().read(k(1), v(1)).commit();
        let report = check(&b.build());
        match &report.outcome {
            Outcome::AxiomViolations(vs) => {
                assert!(matches!(vs[0], AxiomViolation::AbortedRead { .. }));
            }
            _ => panic!("aborted read must fail the axioms"),
        }
    }

    #[test]
    fn read_committed_prefix_is_si() {
        // Two sessions ping-ponging reads of each other's committed writes
        // in a consistent order.
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).commit();
        b.begin().read(k(2), v(2)).commit();
        b.session();
        b.begin().write(k(2), v(2)).commit();
        b.begin().read(k(1), v(1)).commit();
        assert!(check(&b.build()).is_si());
    }

    #[test]
    fn variants_agree_on_verdicts() {
        let build = || {
            let mut b = HistoryBuilder::new();
            b.session();
            b.begin().write(k(1), v(1)).commit();
            b.session();
            b.begin().read(k(1), v(1)).write(k(1), v(2)).commit();
            b.session();
            b.begin().read(k(1), v(1)).write(k(1), v(3)).commit();
            b.build()
        };
        let h = build();
        let full = check_si(&h, &CheckOptions::default());
        let no_p = check_si(&h, &CheckOptions::without_pruning());
        let no_cp = check_si(&h, &CheckOptions::without_compaction_and_pruning());
        assert!(!full.is_si() && !no_p.is_si() && !no_cp.is_si());
    }

    #[test]
    fn report_carries_stage_metadata() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(1), v(2)).commit();
        b.session();
        b.begin().read(k(1), v(2)).write(k(1), v(4)).commit();
        let report = check(&b.build());
        assert!(report.is_si());
        assert!(report.prune_stats.is_some());
        assert!(report.timings.total() > Duration::ZERO);
    }

    #[test]
    fn repeated_lost_update_pairs_all_detected() {
        // Several independent lost-update pairs on distinct keys: still
        // rejected, and the cycle stays on a single key.
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).write(k(2), v(2)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(1), v(11)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(1), v(12)).commit();
        let report = check(&b.build());
        assert!(!report.is_si());
    }
}
