//! The interpretation algorithm (Section 5.3, Appendix C): turn a bare
//! violating cycle into an understandable scenario by
//!
//! 1. **restoring** the "missing" transactions and dependencies behind every
//!    `RW` edge (the writer whose version was read, with its `WR` and `WW`
//!    dependencies),
//! 2. **resolving** uncertain dependencies with the pruning rule — an
//!    uncertain direction whose opposite would close a cycle with certain
//!    dependencies becomes certain (Figure 5c), and
//! 3. **finalizing** by dropping whatever stayed uncertain (Figure 5d),
//!    which yields the minimal cause-only counterexample (Theorem 20's
//!    minimal complete adjoining-cycle set, restricted to the depth-1
//!    search the paper itself reports sufficient in practice).

use polysi_history::{Facts, History, Key, TxnId, WrSource};
use polysi_polygraph::{Constraint, Edge, Label};
use std::collections::HashSet;

/// Whether a scenario dependency is established or still a guess.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Certainty {
    /// Holds in every compatible graph (known, or resolved).
    Certain,
    /// Could not be resolved; removed by finalization.
    Uncertain,
}

/// The interpreted violation scenario.
pub struct Scenario {
    /// Recovered scenario: all collected dependencies with their tags
    /// (Figure 5b/5c).
    pub edges: Vec<(Edge, Certainty)>,
    /// The finalized, cause-only dependency set (Figure 5d).
    pub finalized: Vec<Edge>,
    /// All participating transactions.
    pub transactions: Vec<TxnId>,
    /// Transactions restored by interpretation (not on the original cycle).
    pub restored: Vec<TxnId>,
}

/// Run interpretation for a violating `cycle` of history `h`.
pub fn interpret(h: &History, facts: &Facts, cycle: &[Edge]) -> Scenario {
    let mut edges: Vec<(Edge, Certainty)> = Vec::new();
    // Constraint pairs (key, writer, writer) that interpretation must
    // resolve, normalized to ascending transaction ids.
    let mut pairs: HashSet<(Key, TxnId, TxnId)> = HashSet::new();

    let upsert = |edges: &mut Vec<(Edge, Certainty)>, e: Edge, c: Certainty| {
        if let Some(slot) = edges.iter_mut().find(|(x, _)| *x == e) {
            if c == Certainty::Certain {
                slot.1 = Certainty::Certain;
            }
        } else {
            edges.push((e, c));
        }
    };
    let register = |pairs: &mut HashSet<_>, key: Key, a: TxnId, b: TxnId| {
        let (lo, hi) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        pairs.insert((key, lo, hi));
    };

    // Step 1: restore missing participants (Algorithm 3, Restore).
    for &e in cycle {
        match e.label {
            Label::So | Label::Wr(_) => upsert(&mut edges, e, Certainty::Certain),
            Label::Ww(key) => {
                upsert(&mut edges, e, Certainty::Uncertain);
                register(&mut pairs, key, e.from, e.to);
            }
            Label::Rw(key) => {
                // e.from read `key` from some writer w; the RW edge exists
                // because w -WW-> e.to. Bring w back.
                match read_source(facts, e.from, key) {
                    Some(WrSource::Txn(w)) => {
                        upsert(&mut edges, e, Certainty::Uncertain);
                        upsert(
                            &mut edges,
                            Edge::new(w, e.from, Label::Wr(key)),
                            Certainty::Certain,
                        );
                        if w != e.to {
                            upsert(
                                &mut edges,
                                Edge::new(w, e.to, Label::Ww(key)),
                                Certainty::Uncertain,
                            );
                            register(&mut pairs, key, w, e.to);
                        }
                    }
                    // Reads of the initial value anti-depend on every
                    // writer unconditionally.
                    _ => upsert(&mut edges, e, Certainty::Certain),
                }
            }
        }
    }

    // The complete adjoining-cycle set arbitrates between *every* pair of
    // participating writers on the cycle's keys (Figure 5a shows both
    // orientations of both writer pairs), so register those pairs too.
    let participants: HashSet<TxnId> = edges.iter().flat_map(|(e, _)| [e.from, e.to]).collect();
    let cycle_keys: HashSet<Key> = cycle.iter().filter_map(|e| e.label.key()).collect();
    for &key in &cycle_keys {
        let writers: Vec<TxnId> =
            participants.iter().copied().filter(|&t| facts.writes_key(t, key)).collect();
        for (i, &t) in writers.iter().enumerate() {
            for &s in &writers[i + 1..] {
                register(&mut pairs, key, t, s);
            }
        }
    }

    // Figure 5b also shows the WR dependencies of the arbitrated writers to
    // the readers already in the picture — restore them so the scenario is
    // readable on its own.
    for &(key, t, s) in &pairs {
        for w in [t, s] {
            for &r in facts.readers_of(key, w) {
                if participants.contains(&r) {
                    upsert(&mut edges, Edge::new(w, r, Label::Wr(key)), Certainty::Certain);
                }
            }
        }
    }

    // Step 2: resolve uncertainties (Algorithm 3, Resolve) with the pruning
    // rule, to a fixpoint. Following Find_ACS, the adjoining cycles that
    // refute a direction may run through *any* known edge of the history
    // (`SO`, `WR`, init anti-dependencies), not just scenario edges — the
    // edges of each refuting cycle are pulled into the scenario so the
    // final picture is self-contained (Figure 5b/5c).
    let known = known_edges(h, facts);
    let mut unresolved: Vec<(Key, TxnId, TxnId)> = pairs.into_iter().collect();
    unresolved.sort_unstable_by_key(|&(k, a, b)| (k, a, b));
    loop {
        let mut graph = SmallGraph::new();
        graph.add_edges(&known);
        for (e, c) in &edges {
            if *c == Certainty::Certain {
                graph.add_edges(std::slice::from_ref(e));
            }
        }
        let mut progressed = false;
        let mut still = Vec::new();
        for (key, t, s) in unresolved.drain(..) {
            let cons = Constraint::generalized(key, t, s, |w| facts.readers_of(key, w));
            let wit_either = side_witness(&graph, &cons.either);
            let wit_or = side_witness(&graph, &cons.or);
            // On a violation both sides may be blocked; pick the `either`
            // orientation so the scenario stays deterministic.
            let resolution = match (&wit_either, &wit_or) {
                (None, Some(w)) => Some((&cons.either, w.clone())),
                (Some(w), None) => Some((&cons.or, w.clone())),
                (Some(_), Some(w)) => Some((&cons.either, w.clone())),
                (None, None) => None,
            };
            if let Some((side, witness)) = resolution {
                for &e in side {
                    upsert(&mut edges, e, Certainty::Certain);
                }
                for e in witness {
                    upsert(&mut edges, e, Certainty::Certain);
                }
                progressed = true;
            } else {
                still.push((key, t, s));
            }
        }
        unresolved = still;
        if !progressed || unresolved.is_empty() {
            break;
        }
    }

    // Step 3: finalize (Algorithm 3, Finalize): drop uncertain edges.
    let finalized: Vec<Edge> =
        edges.iter().filter(|(_, c)| *c == Certainty::Certain).map(|(e, _)| *e).collect();

    let cycle_txns: HashSet<TxnId> = cycle.iter().flat_map(|e| [e.from, e.to]).collect();
    let mut transactions: Vec<TxnId> = edges
        .iter()
        .flat_map(|(e, _)| [e.from, e.to])
        .collect::<HashSet<_>>()
        .into_iter()
        .collect();
    transactions.sort_unstable();
    let mut restored: Vec<TxnId> =
        transactions.iter().copied().filter(|t| !cycle_txns.contains(t)).collect();
    restored.sort_unstable();

    let _ = h; // history is carried for future schema-aware rendering
    Scenario { edges, finalized, transactions, restored }
}

/// The source of `reader`'s external read of `key`.
fn read_source(facts: &Facts, reader: TxnId, key: Key) -> Option<WrSource> {
    facts.reads[reader.idx()].iter().find(|&&(k, _, _)| k == key).map(|&(_, _, s)| s)
}

/// All unconditionally-known edges of the history: session order,
/// write-read, and init-read anti-dependencies.
fn known_edges(h: &History, facts: &Facts) -> Vec<Edge> {
    let mut known: Vec<Edge> = Vec::new();
    for (a, b) in h.so_edges() {
        known.push(Edge::new(a, b, Label::So));
    }
    for (w, r, key) in facts.wr_edges() {
        known.push(Edge::new(w, r, Label::Wr(key)));
    }
    for (&key, readers) in &facts.init_readers {
        if let Some(writers) = facts.writers.get(&key) {
            for &r in readers {
                for &w in writers {
                    if w != r {
                        known.push(Edge::new(r, w, Label::Rw(key)));
                    }
                }
            }
        }
    }
    known
}

/// A small adjacency-listed dependency graph supporting induced-graph
/// reachability and path extraction even when cyclic (plain BFS on the
/// layered state space `(txn, at_boundary)`).
struct SmallGraph {
    adj: std::collections::HashMap<TxnId, Vec<Edge>>,
    dep_in: std::collections::HashMap<TxnId, Vec<Edge>>,
}

impl SmallGraph {
    fn new() -> Self {
        SmallGraph { adj: Default::default(), dep_in: Default::default() }
    }

    fn add_edges(&mut self, edges: &[Edge]) {
        for &e in edges {
            self.adj.entry(e.from).or_default().push(e);
            if e.label.is_dep() {
                self.dep_in.entry(e.to).or_default().push(e);
            }
        }
    }

    /// Shortest induced-graph path `a ⇝ b` as typed edges (`RW` only after
    /// a `Dep` edge).
    fn find_path(&self, a: TxnId, b: TxnId) -> Option<Vec<Edge>> {
        let start = (a, true);
        let mut parent: std::collections::HashMap<(TxnId, bool), ((TxnId, bool), Edge)> =
            Default::default();
        let mut queue = vec![start];
        let mut seen: HashSet<(TxnId, bool)> = queue.iter().copied().collect();
        let mut head = 0;
        let mut found = false;
        'bfs: while head < queue.len() {
            let (x, boundary) = queue[head];
            head += 1;
            for &e in self.adj.get(&x).map(Vec::as_slice).unwrap_or(&[]) {
                let nexts: &[(TxnId, bool)] = if boundary && e.label.is_dep() {
                    &[(e.to, true), (e.to, false)]
                } else if !boundary && !e.label.is_dep() {
                    &[(e.to, true)]
                } else {
                    &[]
                };
                for &st in nexts {
                    if seen.insert(st) {
                        parent.insert(st, ((x, boundary), e));
                        if st == (b, true) {
                            found = true;
                            break 'bfs;
                        }
                        queue.push(st);
                    }
                }
            }
        }
        if !found {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = (b, true);
        while cur != start {
            let &(prev, e) = parent.get(&cur)?;
            // Skip the duplicate edge of a (B, M) double-arrival.
            if path.last() != Some(&e) {
                path.push(e);
            }
            cur = prev;
        }
        path.reverse();
        Some(path)
    }

    #[cfg(test)]
    fn reaches(&self, a: TxnId, b: TxnId) -> bool {
        self.find_path(a, b).is_some()
    }
}

/// If some edge of `side` would close a cycle with the current certain
/// graph (the pruning rule of Figure 4), return the certain edges of that
/// refuting cycle.
fn side_witness(g: &SmallGraph, side: &[Edge]) -> Option<Vec<Edge>> {
    for &e in side {
        match e.label {
            Label::Rw(_) => {
                for &d in g.dep_in.get(&e.from).map(Vec::as_slice).unwrap_or(&[]) {
                    if d.from == e.to {
                        return Some(vec![d]);
                    }
                    if let Some(mut path) = g.find_path(e.to, d.from) {
                        path.push(d);
                        return Some(path);
                    }
                }
            }
            _ => {
                if let Some(path) = g.find_path(e.to, e.from) {
                    return Some(path);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysi_history::{HistoryBuilder, Value};

    fn k(n: u64) -> Key {
        Key(n)
    }
    fn v(n: u64) -> Value {
        Value(n)
    }

    /// The MariaDB-Galera lost-update shape of Figure 5: T:(1,4)=W(0,4);
    /// T:(1,5) and T:(2,13) both read 4 and overwrite key 0.
    fn galera_history() -> History {
        let mut b = HistoryBuilder::new();
        b.session(); // session 0: T0 = writer of 4, T1 = first updater
        b.begin().write(k(0), v(4)).commit();
        b.begin().read(k(0), v(4)).write(k(0), v(5)).commit();
        b.session(); // session 1: T2 = second updater
        b.begin().read(k(0), v(4)).write(k(0), v(13)).commit();
        b.build()
    }

    #[test]
    fn galera_lost_update_scenario() {
        let h = galera_history();
        let facts = Facts::analyze(&h);
        assert!(facts.axioms_ok());
        // The MonoSAT-style cycle: T1 -WW-> T2 -RW-> T1.
        let cycle = [
            Edge::new(TxnId(1), TxnId(2), Label::Ww(k(0))),
            Edge::new(TxnId(2), TxnId(1), Label::Rw(k(0))),
        ];
        let s = interpret(&h, &facts, &cycle);
        // The missing writer T0 is restored.
        assert_eq!(s.restored, vec![TxnId(0)]);
        assert_eq!(s.transactions, vec![TxnId(0), TxnId(1), TxnId(2)]);
        // Both WR edges from T0 are certain in the final scenario.
        assert!(s.finalized.contains(&Edge::new(TxnId(0), TxnId(1), Label::Wr(k(0)))));
        assert!(s.finalized.contains(&Edge::new(TxnId(0), TxnId(2), Label::Wr(k(0)))));
        // The resolved version order places T0 first.
        assert!(s.finalized.contains(&Edge::new(TxnId(0), TxnId(1), Label::Ww(k(0)))));
        assert!(s.finalized.contains(&Edge::new(TxnId(0), TxnId(2), Label::Ww(k(0)))));
        // Both cross anti-dependencies (readers of 4 vs. the other writer).
        assert!(s.finalized.contains(&Edge::new(TxnId(2), TxnId(1), Label::Rw(k(0)))));
        assert!(s.finalized.contains(&Edge::new(TxnId(1), TxnId(2), Label::Rw(k(0)))));
    }

    #[test]
    fn so_and_wr_edges_stay_certain() {
        let h = galera_history();
        let facts = Facts::analyze(&h);
        let cycle = [
            Edge::new(TxnId(0), TxnId(1), Label::So),
            Edge::new(TxnId(1), TxnId(0), Label::Rw(k(0))),
        ];
        let s = interpret(&h, &facts, &cycle);
        assert!(s.edges.iter().any(|&(e, c)| e.label == Label::So && c == Certainty::Certain));
    }

    #[test]
    fn init_rw_is_certain() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().read(k(1), Value::INIT).commit();
        b.session();
        b.begin().write(k(1), v(5)).commit();
        let h = b.build();
        let facts = Facts::analyze(&h);
        let cycle = [Edge::new(TxnId(0), TxnId(1), Label::Rw(k(1)))];
        let s = interpret(&h, &facts, &cycle);
        assert_eq!(s.edges, vec![(cycle[0], Certainty::Certain)]);
        assert!(s.restored.is_empty());
    }

    #[test]
    fn reaches_respects_rw_composition() {
        let mut g = SmallGraph::new();
        g.add_edges(&[
            Edge::new(TxnId(0), TxnId(1), Label::Wr(k(1))),
            Edge::new(TxnId(1), TxnId(2), Label::Rw(k(1))),
            Edge::new(TxnId(2), TxnId(3), Label::Rw(k(2))),
        ]);
        assert!(g.reaches(TxnId(0), TxnId(2)));
        assert!(!g.reaches(TxnId(0), TxnId(3)), "RW;RW must not compose");
        assert!(!g.reaches(TxnId(1), TxnId(2)), "bare RW does not compose");
        let p = g.find_path(TxnId(0), TxnId(2)).unwrap();
        assert_eq!(p.len(), 2);
    }
}
