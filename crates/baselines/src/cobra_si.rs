//! CobraSI: checking SI by reduction to a serializability-style acyclicity
//! problem, as the PolySI paper does to obtain an SI baseline from Cobra
//! (Section 5.4: "the incremental algorithm [7, Section 4.3] for reducing
//! checking SI to checking serializability").
//!
//! The reduction doubles every transaction into a read point and a write
//! point; in our infrastructure that is exactly the *layered* graph of
//! `polysi_polygraph::KnownGraph` (boundary/mid nodes), so CobraSI here is:
//! plain (uncompacted) constraints + Cobra's optimizations (RMW inference,
//! WW reachability pruning — *without* PolySI's anti-dependency pruning
//! rule of Figure 4b) + the same SAT-modulo-acyclicity backend on the
//! doubled graph. It is sound and complete for SI but carries more
//! constraints and prunes less than PolySI, which is what the paper's
//! Figure 6 measures. No GPU variant exists here (documented in
//! EXPERIMENTS.md).

use polysi_history::{Facts, History, TxnId};
use polysi_polygraph::{Constraint, Edge, KnownGraph, KnownGraphResult, Label};
use polysi_solver::{Lit, SolveResult, Solver};

/// Outcome of a CobraSI run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiVerdict {
    /// The history satisfies SI.
    Si,
    /// The history violates SI (or fails the non-cyclic axioms).
    NotSi,
}

/// Statistics of a CobraSI run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CobraSiStats {
    /// Constraints generated (plain form).
    pub constraints: usize,
    /// Constraints resolved by inference + pruning.
    pub resolved: usize,
    /// Solver decisions.
    pub decisions: u64,
}

/// Check SI via the doubled-graph reduction.
pub fn cobra_si_check(h: &History) -> (SiVerdict, CobraSiStats) {
    let mut stats = CobraSiStats::default();
    let facts = Facts::analyze(h);
    if !facts.axioms_ok() {
        return (SiVerdict::NotSi, stats);
    }
    let n = h.len();

    let mut known: Vec<Edge> = Vec::new();
    for (a, b) in h.so_edges() {
        known.push(Edge::new(a, b, Label::So));
    }
    for (w, r, key) in facts.wr_edges() {
        known.push(Edge::new(w, r, Label::Wr(key)));
        // RMW inference holds under SI too: first-committer-wins forces the
        // read version to immediately precede the reader's own write.
        if facts.writes_key(r, key) {
            known.push(Edge::new(w, r, Label::Ww(key)));
        }
    }
    for (&key, readers) in &facts.init_readers {
        if let Some(writers) = facts.writers.get(&key) {
            for &r in readers {
                for &w in writers {
                    if w != r {
                        known.push(Edge::new(r, w, Label::Rw(key)));
                    }
                }
            }
        }
    }

    let mut constraints: Vec<Constraint> = Vec::new();
    for (&key, writers) in &facts.writers {
        for (i, &t) in writers.iter().enumerate() {
            for &s in &writers[i + 1..] {
                constraints
                    .extend(Constraint::plain(key, t, s, |w: TxnId| facts.readers_of(key, w)));
            }
        }
    }
    stats.constraints = constraints.len();

    // Cobra-style pruning: only the direct reachability rule, applied to
    // WW edges over the doubled graph.
    loop {
        let kg = match KnownGraph::build(n, &known) {
            KnownGraphResult::Acyclic(g) => g,
            KnownGraphResult::Cyclic(_) => return (SiVerdict::NotSi, stats),
        };
        let mut changed = false;
        let mut remaining = Vec::with_capacity(constraints.len());
        for cons in constraints.drain(..) {
            let bad = |side: &[Edge]| {
                side.iter().any(|e| matches!(e.label, Label::Ww(_)) && kg.reaches(e.to, e.from))
            };
            match (bad(&cons.either), bad(&cons.or)) {
                (true, true) => return (SiVerdict::NotSi, stats),
                (true, false) => {
                    known.extend(cons.or.iter().copied());
                    stats.resolved += 1;
                    changed = true;
                }
                (false, true) => {
                    known.extend(cons.either.iter().copied());
                    stats.resolved += 1;
                    changed = true;
                }
                (false, false) => remaining.push(cons),
            }
        }
        constraints = remaining;
        if !changed {
            break;
        }
    }

    // Encode on the doubled (layered) graph; seed phases along the known
    // topological order.
    let topo: Option<Vec<u32>> = match KnownGraph::build(n, &known) {
        KnownGraphResult::Acyclic(kg) => Some(kg.topo_positions()),
        KnownGraphResult::Cyclic(_) => None,
    };
    let mut solver = Solver::with_graph(2 * n);
    let add_known = |solver: &mut Solver, e: &Edge| {
        let (f, t) = (e.from.0, e.to.0);
        if e.label.is_dep() {
            solver.add_known_edge(f, t);
            solver.add_known_edge(f, n as u32 + t);
        } else {
            solver.add_known_edge(n as u32 + f, t);
        }
    };
    let add_sym = |solver: &mut Solver, guard: Lit, e: &Edge| {
        let (f, t) = (e.from.0, e.to.0);
        if e.label.is_dep() {
            solver.add_symbolic_edge(guard, f, t);
            solver.add_symbolic_edge(guard, f, n as u32 + t);
        } else {
            solver.add_symbolic_edge(guard, n as u32 + f, t);
        }
    };
    for e in &known {
        add_known(&mut solver, e);
    }
    for cons in &constraints {
        let var = solver.new_var();
        let s = Lit::pos(var);
        if let Some(topo) = &topo {
            let score = |side: &[Edge]| -> i64 {
                side.iter()
                    .filter(|e| matches!(e.label, Label::Ww(_)))
                    .map(|e| if topo[e.from.idx()] < topo[e.to.idx()] { 1i64 } else { -1 })
                    .sum()
            };
            solver.set_phase(var, score(&cons.either) >= score(&cons.or));
        }
        for e in &cons.either {
            add_sym(&mut solver, s, e);
        }
        for e in &cons.or {
            add_sym(&mut solver, !s, e);
        }
    }
    let verdict = match solver.solve() {
        SolveResult::Sat(_) => SiVerdict::Si,
        SolveResult::Unsat | SolveResult::Unknown => SiVerdict::NotSi,
    };
    stats.decisions = solver.stats().decisions;
    (verdict, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysi_history::{HistoryBuilder, Key, Value};

    fn k(n: u64) -> Key {
        Key(n)
    }
    fn v(n: u64) -> Value {
        Value(n)
    }

    #[test]
    fn write_skew_is_si() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).write(k(2), v(2)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(2), v(22)).commit();
        b.session();
        b.begin().read(k(2), v(2)).write(k(1), v(11)).commit();
        assert_eq!(cobra_si_check(&b.build()).0, SiVerdict::Si);
    }

    #[test]
    fn lost_update_is_not_si() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(1), v(2)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(1), v(3)).commit();
        assert_eq!(cobra_si_check(&b.build()).0, SiVerdict::NotSi);
    }

    #[test]
    fn long_fork_is_not_si() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(10)).write(k(2), v(20)).commit();
        b.session();
        b.begin().write(k(1), v(11)).commit();
        b.session();
        b.begin().write(k(2), v(21)).commit();
        b.session();
        b.begin().read(k(1), v(11)).read(k(2), v(20)).commit();
        b.session();
        b.begin().read(k(1), v(10)).read(k(2), v(21)).commit();
        assert_eq!(cobra_si_check(&b.build()).0, SiVerdict::NotSi);
    }

    #[test]
    fn plain_constraints_outnumber_generalized() {
        // Sanity: CobraSI carries at least as many constraints as PolySI
        // would (the paper's compaction argument, Section 3.1).
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(1), v(2)).commit();
        b.session();
        b.begin().read(k(1), v(2)).write(k(1), v(3)).commit();
        let h = b.build();
        let (_, stats) = cobra_si_check(&h);
        assert!(stats.constraints >= 3);
    }
}
