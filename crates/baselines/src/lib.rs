//! # polysi-baselines — the competing checkers of the PolySI evaluation
//!
//! Reimplementations of the baselines PolySI is compared against in
//! Section 5.4:
//!
//! * [`dbcop`] — the most efficient solver-free black-box SI checker:
//!   explicit memoized search over begin/commit interleavings;
//! * [`cobra`] — the state-of-the-art SAT-based **serializability**
//!   checker (plain acyclicity over `SO ∪ WR ∪ WW ∪ RW`, RMW inference,
//!   reachability pruning);
//! * [`cobra_si`] — SI checking by reduction to the doubled-graph
//!   acyclicity problem fed to the Cobra machinery (the paper's CobraSI;
//!   no GPU acceleration exists in this environment).
//!
//! All three share the verdict-level contract with
//! `polysi_checker::check_si` and are cross-validated against it in this
//! crate's test suite.

pub mod cobra;
pub mod cobra_si;
pub mod dbcop;

pub use cobra::{cobra_check_ser, CobraOptions, CobraStats, SerVerdict};
pub use cobra_si::{cobra_si_check, CobraSiStats, SiVerdict};
pub use dbcop::{dbcop_check_si, dbcop_check_si_deepening, DbcopReport, DbcopVerdict};
