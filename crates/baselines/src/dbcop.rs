//! The dbcop baseline \[Biswas & Enea, OOPSLA'19\]: solver-free SI checking
//! by explicit state-space search.
//!
//! dbcop decides SI in `O(n^c)` for `c` sessions by searching over
//! session-prefix states. Our implementation is the operational
//! begin/commit-event search of [`polysi_dbsim::replay`] (memoized DFS over
//! session positions plus the committed-store fingerprint), wrapped with a
//! verdict type and timing. It shares dbcop's observable behaviour in the
//! paper's evaluation: no counterexamples, no aborted/intermediate-read
//! checks beyond the axioms, and sharply degrading runtime as concurrency
//! grows (Figure 6).

use polysi_dbsim::{replay_check_si, ReplayResult};
use polysi_history::History;
use std::time::{Duration, Instant};

/// dbcop verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbcopVerdict {
    /// The history satisfies SI.
    Si,
    /// The history violates SI.
    NotSi,
    /// The state budget (timeout stand-in) was exhausted.
    Timeout,
}

/// Result of a dbcop run.
#[derive(Debug, Clone, Copy)]
pub struct DbcopReport {
    /// The verdict.
    pub verdict: DbcopVerdict,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// Run the dbcop-style search with a state budget (the experiments use the
/// budget as a deterministic stand-in for the paper's 180 s timeout).
pub fn dbcop_check_si(h: &History, state_budget: usize) -> DbcopReport {
    let t0 = Instant::now();
    let verdict = match replay_check_si(h, state_budget) {
        ReplayResult::Si => DbcopVerdict::Si,
        ReplayResult::NotSi => DbcopVerdict::NotSi,
        ReplayResult::Budget => DbcopVerdict::Timeout,
    };
    DbcopReport { verdict, elapsed: t0.elapsed() }
}

/// Iterative-deepening wrapper: run with `budget` and, on exhaustion,
/// double it and re-search from scratch (the position/store memo is not
/// resumable across budgets) until the search completes or the budget
/// would exceed `cap`. This mirrors restarting dbcop with a longer
/// timeout; the geometric schedule keeps the total work within a
/// constant factor of the final budget's single run, while letting the
/// cheap majority of histories finish at the small initial budget.
pub fn dbcop_check_si_deepening(h: &History, budget: usize, cap: usize) -> DbcopReport {
    let t0 = Instant::now();
    let mut budget = budget.max(1).min(cap.max(1));
    loop {
        let r = dbcop_check_si(h, budget);
        if r.verdict != DbcopVerdict::Timeout || budget >= cap {
            return DbcopReport { verdict: r.verdict, elapsed: t0.elapsed() };
        }
        budget = budget.saturating_mul(2).min(cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysi_history::{HistoryBuilder, Key, Value};

    #[test]
    fn verdicts_map_through() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(Key(1), Value(1)).commit();
        let r = dbcop_check_si(&b.build(), 10_000);
        assert_eq!(r.verdict, DbcopVerdict::Si);

        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(Key(1), Value(1)).commit();
        b.session();
        b.begin().read(Key(1), Value(1)).write(Key(1), Value(2)).commit();
        b.session();
        b.begin().read(Key(1), Value(1)).write(Key(1), Value(3)).commit();
        let r = dbcop_check_si(&b.build(), 100_000);
        assert_eq!(r.verdict, DbcopVerdict::NotSi);
    }

    #[test]
    fn budget_exhaustion_is_timeout() {
        let mut b = HistoryBuilder::new();
        for s in 0..5u64 {
            b.session();
            for t in 0..4u64 {
                b.begin().write(Key(s), Value(s * 100 + t + 1)).commit();
            }
        }
        let r = dbcop_check_si(&b.build(), 3);
        assert_eq!(r.verdict, DbcopVerdict::Timeout);
    }

    /// Deepening resolves what the initial budget alone exhausts, and a
    /// hard cap still times out.
    #[test]
    fn deepening_doubles_past_an_exhausted_initial_budget() {
        let mut b = HistoryBuilder::new();
        for s in 0..5u64 {
            b.session();
            for t in 0..4u64 {
                b.begin().write(Key(s), Value(s * 100 + t + 1)).commit();
            }
        }
        let h = b.build();
        assert_eq!(dbcop_check_si(&h, 3).verdict, DbcopVerdict::Timeout);
        assert_eq!(dbcop_check_si_deepening(&h, 3, 1_000_000).verdict, DbcopVerdict::Si);
        assert_eq!(dbcop_check_si_deepening(&h, 3, 4).verdict, DbcopVerdict::Timeout);
    }
}
