//! A Cobra-style serializability checker \[Tan et al., OSDI'20\].
//!
//! Cobra checks **SER**: it searches for an acyclic dependency graph over
//! `SO ∪ WR ∪ WW ∪ RW` — *plain* acyclicity, no `(Dep);RW?` composition.
//! The pipeline mirrors PolySI's: build the polygraph, infer what can be
//! inferred, prune constraints by reachability, and hand the rest to the
//! SAT-modulo-acyclicity solver over a *single-layer* graph.
//!
//! Two Cobra optimizations are implemented:
//!
//! * **RMW inference**: if `T'` reads `x` from `T` and also writes `x`,
//!   then `T` immediately precedes `T'` in `x`'s version order under SER
//!   (any interposed writer would have been read instead), so
//!   `WW(T → T')` is a known edge. On TPC-C-like workloads this resolves
//!   nearly every constraint (Section 5.4.1 of the PolySI paper).
//! * **Reachability pruning**: a constraint side whose edge `(u, v)` has a
//!   known path `v ⇝ u` is impossible.
//!
//! No GPU acceleration exists in this environment; this corresponds to the
//! paper's "CobraSI w/o GPU" configuration (see EXPERIMENTS.md).
//!
//! The same SER semantics (plain acyclicity + RMW inference) is also a
//! first-class mode of the main pipeline
//! (`polysi_checker::engine::IsolationLevel::Ser`, built on
//! `polysi_polygraph::Semantics::Ser`) with interpretation and sharding
//! support. This module deliberately keeps its own independent closure and
//! pruning implementation so the two can be differentially tested against
//! each other (see `tests/agreement.rs` and the conformance harness).

use polysi_history::{Facts, History, TxnId};
use polysi_polygraph::{Constraint, ConstraintMode, Edge, Label};
use polysi_solver::{Lit, SolveResult, Solver};
use std::collections::HashSet;

/// Outcome of a Cobra run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SerVerdict {
    /// The history is serializable.
    Serializable,
    /// The history is not serializable (or fails the non-cyclic axioms).
    NotSerializable,
}

/// Statistics of a Cobra run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CobraStats {
    /// Constraints generated.
    pub constraints: usize,
    /// Constraints resolved by RMW inference + pruning.
    pub resolved: usize,
    /// Solver decisions.
    pub decisions: u64,
}

/// Options for the Cobra baseline.
#[derive(Debug, Clone, Copy)]
pub struct CobraOptions {
    /// Apply the read-modify-write version-order inference.
    pub rmw_inference: bool,
    /// Apply reachability-based constraint pruning.
    pub pruning: bool,
    /// Constraint representation.
    pub mode: ConstraintMode,
}

impl Default for CobraOptions {
    fn default() -> Self {
        CobraOptions { rmw_inference: true, pruning: true, mode: ConstraintMode::Generalized }
    }
}

/// Check a history for serializability, Cobra-style.
pub fn cobra_check_ser(h: &History, opts: &CobraOptions) -> (SerVerdict, CobraStats) {
    let facts = Facts::analyze(h);
    let mut stats = CobraStats::default();
    if !facts.axioms_ok() {
        return (SerVerdict::NotSerializable, stats);
    }
    let n = h.len();

    // Known edges: SO, WR, init-read anti-dependencies (under SER these are
    // plain edges too), plus RMW-inferred WW edges.
    let mut known: Vec<Edge> = Vec::new();
    for (a, b) in h.so_edges() {
        known.push(Edge::new(a, b, Label::So));
    }
    for (w, r, key) in facts.wr_edges() {
        known.push(Edge::new(w, r, Label::Wr(key)));
        if opts.rmw_inference && facts.writes_key(r, key) {
            known.push(Edge::new(w, r, Label::Ww(key)));
        }
    }
    for (&key, readers) in &facts.init_readers {
        if let Some(writers) = facts.writers.get(&key) {
            for &r in readers {
                for &w in writers {
                    if w != r {
                        known.push(Edge::new(r, w, Label::Rw(key)));
                    }
                }
            }
        }
    }

    // Constraints per key per writer pair (as in the polygraph).
    let mut constraints: Vec<Constraint> = Vec::new();
    for (&key, writers) in &facts.writers {
        for (i, &t) in writers.iter().enumerate() {
            for &s in &writers[i + 1..] {
                let readers = |w: TxnId| facts.readers_of(key, w);
                match opts.mode {
                    ConstraintMode::Generalized => {
                        constraints.push(Constraint::generalized(key, t, s, readers));
                    }
                    ConstraintMode::Plain => {
                        constraints.extend(Constraint::plain(key, t, s, readers));
                    }
                }
            }
        }
    }
    stats.constraints = constraints.len();

    // Iterative reachability pruning over the plain known graph.
    if opts.pruning {
        loop {
            let Some(reach) = plain_closure(n, &known) else {
                // The known graph is already cyclic: not serializable.
                return (SerVerdict::NotSerializable, stats);
            };
            let mut changed = false;
            let mut remaining = Vec::with_capacity(constraints.len());
            for cons in constraints.drain(..) {
                let bad = |side: &[Edge]| side.iter().any(|e| reach.contains(&(e.to.0, e.from.0)));
                match (bad(&cons.either), bad(&cons.or)) {
                    (true, true) => return (SerVerdict::NotSerializable, stats),
                    (true, false) => {
                        known.extend(cons.or.iter().copied());
                        stats.resolved += 1;
                        changed = true;
                    }
                    (false, true) => {
                        known.extend(cons.either.iter().copied());
                        stats.resolved += 1;
                        changed = true;
                    }
                    (false, false) => remaining.push(cons),
                }
            }
            constraints = remaining;
            if !changed {
                break;
            }
        }
    }

    // Encode: single-layer graph, every edge direct. Seed phases along a
    // topological order of the known graph (Cobra's "coalescing" analogue).
    let topo = plain_topo_positions(n, &known);
    let mut solver = Solver::with_graph(n);
    for e in &known {
        solver.add_known_edge(e.from.0, e.to.0);
    }
    for cons in &constraints {
        let var = solver.new_var();
        let s = Lit::pos(var);
        if let Some(topo) = &topo {
            let score = |side: &[Edge]| -> i64 {
                side.iter()
                    .map(|e| if topo[e.from.idx()] < topo[e.to.idx()] { 1i64 } else { -1 })
                    .sum()
            };
            solver.set_phase(var, score(&cons.either) >= score(&cons.or));
        }
        for e in &cons.either {
            solver.add_symbolic_edge(s, e.from.0, e.to.0);
        }
        for e in &cons.or {
            solver.add_symbolic_edge(!s, e.from.0, e.to.0);
        }
    }
    let verdict = match solver.solve() {
        SolveResult::Sat(_) => SerVerdict::Serializable,
        SolveResult::Unsat | SolveResult::Unknown => SerVerdict::NotSerializable,
    };
    stats.decisions = solver.stats().decisions;
    (verdict, stats)
}

/// Topological positions of the plain known graph; `None` if cyclic.
fn plain_topo_positions(n: usize, edges: &[Edge]) -> Option<Vec<u32>> {
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut indeg = vec![0u32; n];
    for e in edges {
        adj[e.from.0 as usize].push(e.to.0);
        indeg[e.to.0 as usize] += 1;
    }
    let mut order: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
    let mut head = 0;
    while head < order.len() {
        let u = order[head];
        head += 1;
        for &v in &adj[u as usize] {
            indeg[v as usize] -= 1;
            if indeg[v as usize] == 0 {
                order.push(v);
            }
        }
    }
    if order.len() < n {
        return None;
    }
    let mut pos = vec![0u32; n];
    for (p, &v) in order.iter().enumerate() {
        pos[v as usize] = p as u32;
    }
    Some(pos)
}

/// Transitive closure (as a pair set) of the plain known graph; `None` if
/// cyclic.
fn plain_closure(n: usize, edges: &[Edge]) -> Option<HashSet<(u32, u32)>> {
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut indeg = vec![0u32; n];
    for e in edges {
        adj[e.from.0 as usize].push(e.to.0);
        indeg[e.to.0 as usize] += 1;
    }
    let mut order: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
    let mut head = 0;
    while head < order.len() {
        let u = order[head];
        head += 1;
        for &v in &adj[u as usize] {
            indeg[v as usize] -= 1;
            if indeg[v as usize] == 0 {
                order.push(v);
            }
        }
    }
    if order.len() < n {
        return None;
    }
    // Reverse-topological reach sets via bitsets.
    let mut reach = polysi_solver::bitset::BitMatrix::new(n);
    for &u in order.iter().rev() {
        for &v in &adj[u as usize] {
            reach.set(u as usize, v as usize);
            reach.or_row_into(v as usize, u as usize);
        }
    }
    let mut pairs = HashSet::new();
    for u in 0..n {
        for v in reach.iter_row(u) {
            pairs.insert((u as u32, v as u32));
        }
    }
    Some(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysi_history::{HistoryBuilder, Key, Value};

    fn k(n: u64) -> Key {
        Key(n)
    }
    fn v(n: u64) -> Value {
        Value(n)
    }

    #[test]
    fn serial_history_serializable() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).commit();
        b.begin().read(k(1), v(1)).write(k(1), v(2)).commit();
        let (verdict, _) = cobra_check_ser(&b.build(), &CobraOptions::default());
        assert_eq!(verdict, SerVerdict::Serializable);
    }

    #[test]
    fn write_skew_not_serializable() {
        // Write skew is SI-allowed but not serializable: Cobra must reject.
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).write(k(2), v(2)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(2), v(22)).commit();
        b.session();
        b.begin().read(k(2), v(2)).write(k(1), v(11)).commit();
        let (verdict, _) = cobra_check_ser(&b.build(), &CobraOptions::default());
        assert_eq!(verdict, SerVerdict::NotSerializable);
    }

    #[test]
    fn lost_update_not_serializable() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(1), v(2)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(1), v(3)).commit();
        let (verdict, _) = cobra_check_ser(&b.build(), &CobraOptions::default());
        assert_eq!(verdict, SerVerdict::NotSerializable);
    }

    #[test]
    fn rmw_inference_resolves_chains() {
        // A serial chain of read-modify-writes: with RMW inference, zero
        // constraints should survive pruning.
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(1), v(2)).commit();
        b.session();
        b.begin().read(k(1), v(2)).write(k(1), v(3)).commit();
        let h = b.build();
        let (verdict, stats) = cobra_check_ser(&h, &CobraOptions::default());
        assert_eq!(verdict, SerVerdict::Serializable);
        assert_eq!(stats.resolved, stats.constraints);
    }

    #[test]
    fn concurrent_blind_writes_serializable() {
        // Two blind writes with a later read establishing the order.
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).commit();
        b.session();
        b.begin().write(k(1), v(2)).commit();
        b.session();
        b.begin().read(k(1), v(2)).commit();
        let (verdict, _) = cobra_check_ser(&b.build(), &CobraOptions::default());
        assert_eq!(verdict, SerVerdict::Serializable);
    }

    #[test]
    fn options_do_not_change_verdicts() {
        let mut b = HistoryBuilder::new();
        b.session();
        b.begin().write(k(1), v(1)).write(k(2), v(2)).commit();
        b.session();
        b.begin().read(k(1), v(1)).write(k(2), v(22)).commit();
        b.session();
        b.begin().read(k(2), v(2)).write(k(1), v(11)).commit();
        let h = b.build();
        let base = cobra_check_ser(&h, &CobraOptions::default()).0;
        for rmw in [false, true] {
            for pruning in [false, true] {
                for mode in [ConstraintMode::Generalized, ConstraintMode::Plain] {
                    let o = CobraOptions { rmw_inference: rmw, pruning, mode };
                    assert_eq!(cobra_check_ser(&h, &o).0, base, "opts {o:?}");
                }
            }
        }
    }
}
