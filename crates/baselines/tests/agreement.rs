//! Cross-checker agreement: PolySI, dbcop, and CobraSI must return the same
//! SI verdict on simulator histories; Cobra's SER verdict must imply SI
//! (the isolation-level hierarchy of the paper's Figure 1).

use polysi_baselines::{
    cobra_check_ser, cobra_si_check, dbcop_check_si, CobraOptions, DbcopVerdict, SerVerdict,
    SiVerdict,
};
use polysi_checker::{check_si, CheckOptions};
use polysi_dbsim::{run, IsolationLevel, SimConfig};
use polysi_workloads::{generate, GeneralParams};

fn sims() -> impl Iterator<Item = polysi_history::History> {
    let levels = [
        IsolationLevel::Serializable,
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::NoWriteConflictDetection,
        IsolationLevel::StaleSnapshot,
        IsolationLevel::PerKeySnapshot,
        IsolationLevel::ReadCommitted,
    ];
    (0..12u64).flat_map(move |seed| {
        levels.into_iter().map(move |level| {
            let plan = generate(&GeneralParams {
                sessions: 3,
                txns_per_session: 5,
                ops_per_txn: 3,
                keys: 4,
                read_pct: 50,
                seed,
                ..Default::default()
            });
            run(&plan, &SimConfig::new(level, seed)).history
        })
    })
}

#[test]
fn polysi_dbcop_cobrasi_agree() {
    for (i, h) in sims().enumerate() {
        let poly = check_si(&h, &CheckOptions::default()).is_si();
        let dbcop = dbcop_check_si(&h, 5_000_000);
        let cobrasi = cobra_si_check(&h).0;
        match dbcop.verdict {
            DbcopVerdict::Si => assert!(poly, "case {i}: dbcop=Si polysi=NotSi\n{h:?}"),
            DbcopVerdict::NotSi => assert!(!poly, "case {i}: dbcop=NotSi polysi=Si\n{h:?}"),
            DbcopVerdict::Timeout => {}
        }
        assert_eq!(
            cobrasi == SiVerdict::Si,
            poly,
            "case {i}: CobraSI disagrees with PolySI\n{h:?}"
        );
    }
}

#[test]
fn serializability_implies_si() {
    for (i, h) in sims().enumerate() {
        let (ser, _) = cobra_check_ser(&h, &CobraOptions::default());
        if ser == SerVerdict::Serializable {
            assert!(
                check_si(&h, &CheckOptions::default()).is_si(),
                "case {i}: SER but not SI — hierarchy violated\n{h:?}"
            );
        }
    }
}

#[test]
fn serializable_sim_runs_pass_cobra() {
    for seed in 0..10u64 {
        let plan = generate(&GeneralParams {
            sessions: 4,
            txns_per_session: 10,
            ops_per_txn: 4,
            keys: 6,
            seed,
            ..Default::default()
        });
        let out = run(&plan, &SimConfig::new(IsolationLevel::Serializable, seed));
        let (verdict, _) = cobra_check_ser(&out.history, &CobraOptions::default());
        assert_eq!(verdict, SerVerdict::Serializable, "seed {seed}");
    }
}

/// The engine's first-class SER mode and the independent Cobra baseline
/// must agree on every simulated history — the baselines crate's own
/// differential anchor for the isolation-level promotion.
#[test]
fn engine_ser_mode_agrees_with_cobra() {
    use polysi_checker::engine::{check, EngineOptions, IsolationLevel as Level};
    let opts = EngineOptions { interpret: false, ..Default::default() };
    for (i, h) in sims().enumerate() {
        let engine = check(&h, Level::Ser, &opts).accepted();
        let (cobra, _) = cobra_check_ser(&h, &CobraOptions::default());
        assert_eq!(
            engine,
            cobra == SerVerdict::Serializable,
            "case {i}: engine SER disagrees with Cobra\n{h:?}"
        );
    }
}

#[test]
fn si_sim_runs_can_violate_ser_but_not_si() {
    // Write skew should eventually appear: SI accepts, SER rejects.
    let mut saw_skew = false;
    for seed in 0..25u64 {
        let plan = generate(&GeneralParams {
            sessions: 4,
            txns_per_session: 10,
            ops_per_txn: 4,
            keys: 4,
            read_pct: 60,
            seed,
            ..Default::default()
        });
        let out = run(&plan, &SimConfig::new(IsolationLevel::SnapshotIsolation, seed));
        assert!(check_si(&out.history, &CheckOptions::default()).is_si(), "seed {seed}");
        let (ser, _) = cobra_check_ser(&out.history, &CobraOptions::default());
        if ser == SerVerdict::NotSerializable {
            saw_skew = true;
        }
    }
    assert!(saw_skew, "no SI-but-not-SER run in 25 seeds (write skew expected)");
}
